//! The supervised multi-tenant job server.
//!
//! A [`JobServer`] owns a pool of persistent worker threads and a queue of
//! admitted exploration jobs. Admission control is budget-denominated: each
//! job declares a weight, the aggregate weight of running work never exceeds
//! [`ServerConfig::capacity`], and submissions beyond the queue allowance
//! are rejected with a structured [`AdmissionError`] rather than queued
//! unboundedly.
//!
//! Supervision: every attempt runs under `catch_unwind`, so a panicking
//! worker never takes the pool down — the failure is recorded, the job goes
//! back on the queue with exponential backoff, and after
//! [`ServerConfig::max_attempts`] failures it is quarantined as a poison
//! job. Between steps the worker checkpoints the explorer's learned state
//! (cuts, objective floor, budget usage) into shared slots, so a retry —
//! possibly on a *different* worker — resumes from the last good checkpoint
//! with cuts and incumbent intact instead of restarting from scratch. Two
//! slots are kept (latest and previous) so a checkpoint torn mid-write
//! falls back to the one before it, and failing that, to scratch; the
//! deterministic exploration loop makes the final result identical along
//! every one of these paths.

use crate::job::{AdmissionError, IncumbentEvent, JobId, JobSpec, JobStatus};
use crate::metrics::MetricsWatch;
use crate::trace::{Field, TraceSink};
use contrarc::{Exploration, ExploreError, Explorer, ExplorerConfig, Step, StopReason};
use contrarc_obs::export::{expose_metrics, push_header, push_sample};
use contrarc_obs::metrics::{counter_add, gauge_add, gauge_set, snapshot};
use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread;
use std::time::Instant;

/// Configuration of a [`JobServer`].
#[derive(Clone)]
pub struct ServerConfig {
    /// Persistent worker threads in the pool.
    pub workers: usize,
    /// Aggregate weight of concurrently *running* jobs. Jobs whose weight
    /// would push the running total past this wait in the queue.
    pub capacity: f64,
    /// Additional aggregate weight allowed to *queue* beyond `capacity`.
    /// Submissions past `capacity + queue_limit` are rejected with
    /// [`AdmissionError::Overloaded`].
    pub queue_limit: f64,
    /// Execution attempts per job before it is quarantined as poison.
    pub max_attempts: u32,
    /// Base of the exponential retry backoff: attempt `n` waits
    /// `backoff_base_ms · 2^(n-1)` milliseconds before becoming eligible
    /// again.
    pub backoff_base_ms: u64,
    /// Ceiling on the retry backoff.
    pub backoff_cap_ms: u64,
    /// Checkpoint the explorer every this many exploration steps. `0`
    /// disables periodic checkpointing (retries then restart from scratch).
    pub checkpoint_every: u64,
    /// Callback receiving [`IncumbentEvent`]s from all jobs as their
    /// anytime incumbents improve.
    pub on_incumbent: Option<crate::job::IncumbentCallback>,
    /// Directory for per-job JSONL lifecycle traces; `None` disables
    /// tracing.
    pub trace_dir: Option<PathBuf>,
    /// Deterministic chaos schedule (seeded worker panics and torn
    /// checkpoint writes). Only present with the `fault-injection` feature.
    #[cfg(feature = "fault-injection")]
    pub chaos: Option<crate::chaos::ChaosConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            capacity: 4.0,
            queue_limit: 8.0,
            max_attempts: 3,
            backoff_base_ms: 5,
            backoff_cap_ms: 200,
            checkpoint_every: 1,
            on_incumbent: None,
            trace_dir: None,
            #[cfg(feature = "fault-injection")]
            chaos: None,
        }
    }
}

impl std::fmt::Debug for ServerConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = f.debug_struct("ServerConfig");
        s.field("workers", &self.workers)
            .field("capacity", &self.capacity)
            .field("queue_limit", &self.queue_limit)
            .field("max_attempts", &self.max_attempts)
            .field("backoff_base_ms", &self.backoff_base_ms)
            .field("backoff_cap_ms", &self.backoff_cap_ms)
            .field("checkpoint_every", &self.checkpoint_every)
            .field("on_incumbent", &self.on_incumbent.is_some())
            .field("trace_dir", &self.trace_dir);
        #[cfg(feature = "fault-injection")]
        s.field("chaos", &self.chaos);
        s.finish()
    }
}

/// Durable checkpoint slots of one job, shared between the supervisor state
/// and the worker currently running the job. Kept outside the job's phase so
/// they survive a panicking attempt.
#[derive(Debug, Default)]
struct CkptSlots {
    latest: Option<String>,
    prev: Option<String>,
    writes: u64,
}

impl CkptSlots {
    /// Shift `latest` into `prev` and install a new latest checkpoint. The
    /// previous slot is what recovery falls back to when `latest` turns out
    /// to be torn.
    fn store(&mut self, text: String) {
        self.prev = self.latest.take();
        self.latest = Some(text);
        self.writes += 1;
    }
}

// One `Phase` exists per job; the `Done` payload dwarfing the other
// variants is irrelevant at that population.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum Phase {
    Queued { not_before: Instant },
    Running,
    Done { result: Exploration },
    Cancelled,
    Quarantined { last_error: String },
}

#[derive(Debug)]
struct Job {
    spec: Arc<JobSpec>,
    phase: Phase,
    attempts: u32,
    recoveries: u32,
    cancel: Arc<AtomicBool>,
    ckpt: Arc<Mutex<CkptSlots>>,
}

#[derive(Debug, Default)]
struct State {
    jobs: BTreeMap<u64, Job>,
    queue: VecDeque<u64>,
    running_weight: f64,
    queued_weight: f64,
    draining: bool,
    next_id: u64,
}

impl State {
    fn status_of(&self, id: u64) -> Option<JobStatus> {
        let job = self.jobs.get(&id)?;
        Some(match &job.phase {
            Phase::Queued { .. } => JobStatus::Queued {
                position: self.queue.iter().position(|&q| q == id).unwrap_or(0),
                attempts: job.attempts,
            },
            Phase::Running => JobStatus::Running {
                attempts: job.attempts,
            },
            Phase::Done { result } => JobStatus::Done {
                result: result.clone(),
                recoveries: job.recoveries,
            },
            Phase::Cancelled => JobStatus::Cancelled,
            Phase::Quarantined { last_error } => JobStatus::Quarantined {
                attempts: job.attempts,
                last_error: last_error.clone(),
            },
        })
    }

    fn all_terminal(&self) -> bool {
        self.jobs.values().all(|j| {
            matches!(
                j.phase,
                Phase::Done { .. } | Phase::Cancelled | Phase::Quarantined { .. }
            )
        })
    }

    fn publish_gauges(&self) {
        gauge_set("serve.queue.depth", self.queue.len() as i64);
        let running = self
            .jobs
            .values()
            .filter(|j| matches!(j.phase, Phase::Running))
            .count();
        gauge_set("serve.jobs.running", running as i64);
    }

    /// Append the server's per-tenant and per-job label dimensions to an
    /// exposition document: job counts by `{tenant, phase}` plus per-job
    /// attempts, recoveries, checkpoint writes, and weight keyed by
    /// `{tenant, job}`. Tenant names are free-form user input; the exporter
    /// escapes them.
    fn exposition_extras(&self, out: &mut String) {
        let mut tenant_phase: BTreeMap<(&str, &'static str), u64> = BTreeMap::new();
        for job in self.jobs.values() {
            let phase = match &job.phase {
                Phase::Queued { .. } => "queued",
                Phase::Running => "running",
                Phase::Done { .. } => "done",
                Phase::Cancelled => "cancelled",
                Phase::Quarantined { .. } => "quarantined",
            };
            *tenant_phase.entry((&job.spec.name, phase)).or_insert(0) += 1;
        }
        push_header(
            out,
            "contrarc_serve_tenant_jobs",
            "gauge",
            "jobs per tenant and phase",
        );
        for ((tenant, phase), n) in &tenant_phase {
            push_sample(
                out,
                "contrarc_serve_tenant_jobs",
                &[("tenant", tenant), ("phase", phase)],
                *n as f64,
            );
        }
        for (family, help) in [
            ("contrarc_serve_job_attempts", "execution attempts so far"),
            ("contrarc_serve_job_recoveries", "retries after a failure"),
            (
                "contrarc_serve_job_checkpoint_writes",
                "checkpoint slot writes",
            ),
            ("contrarc_serve_job_weight", "admission weight"),
        ] {
            push_header(out, family, "gauge", help);
            for (&id, job) in &self.jobs {
                let job_label = JobId(id).to_string();
                let labels = [
                    ("tenant", job.spec.name.as_str()),
                    ("job", job_label.as_str()),
                ];
                let value = match family {
                    "contrarc_serve_job_attempts" => f64::from(job.attempts),
                    "contrarc_serve_job_recoveries" => f64::from(job.recoveries),
                    "contrarc_serve_job_checkpoint_writes" => lock(&job.ckpt).writes as f64,
                    _ => job.spec.weight,
                };
                push_sample(out, family, &labels, value);
            }
        }
    }
}

#[derive(Debug)]
struct Inner {
    cfg: ServerConfig,
    state: Mutex<State>,
    /// Workers wait here for eligible work.
    wake: Condvar,
    /// Clients wait here for terminal transitions (`wait`, `drain`).
    settled: Condvar,
    shutdown: AtomicBool,
    trace: TraceSink,
}

impl Inner {
    /// Render the full exposition document: the process-global registry
    /// (every `contrarc_*` counter, gauge, and histogram) followed by the
    /// server's per-tenant and per-job dimensions.
    fn metrics_text(&self) -> String {
        let mut out = expose_metrics(&snapshot());
        lock(&self.state).exposition_extras(&mut out);
        out
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // Worker panics are caught and converted to job failures, but should
    // one ever poison a lock, the supervisor state itself is kept
    // consistent by the settle path — keep serving rather than wedge.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// What one supervised attempt produced.
// Short-lived: constructed once per attempt and consumed immediately by
// `settle`, so the variant size skew does not matter.
#[allow(clippy::large_enum_variant)]
enum AttemptOutcome {
    /// The exploration settled (including graceful cancellation partials).
    Settled(Exploration),
    /// The attempt failed: a solver/encoding error or a caught worker
    /// panic, rendered for the retry ladder and the quarantine record.
    Failed(String),
}

/// A fault-tolerant, multi-tenant exploration job server.
///
/// ```no_run
/// # fn demo(problem: contrarc::Problem) {
/// use contrarc_serve::{JobServer, JobSpec, ServerConfig};
///
/// let server = JobServer::new(ServerConfig::default());
/// let id = server.submit(JobSpec::new("tenant-a", problem)).unwrap();
/// let status = server.wait(id).unwrap();
/// println!("{:?}", status.result());
/// # }
/// ```
///
/// Dropping the server shuts the pool down: running attempts settle as
/// [`Exploration::Partial`] with [`StopReason::Cancelled`] at their next
/// step boundary, still-queued jobs are left queued, and all workers are
/// joined.
#[derive(Debug)]
pub struct JobServer {
    inner: Arc<Inner>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl JobServer {
    /// Start the worker pool.
    #[must_use]
    pub fn new(cfg: ServerConfig) -> JobServer {
        let trace = TraceSink::new(cfg.trace_dir.clone());
        let workers = cfg.workers.max(1);
        let inner = Arc::new(Inner {
            cfg,
            state: Mutex::new(State::default()),
            wake: Condvar::new(),
            settled: Condvar::new(),
            shutdown: AtomicBool::new(false),
            trace,
        });
        let handles = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker thread")
            })
            .collect();
        JobServer {
            inner,
            workers: handles,
        }
    }

    /// Submit a job. Admission control answers immediately: `Ok` with the
    /// job's identity, or a structured [`AdmissionError`] stating why the
    /// job cannot be taken (never a panic, never a hang). Weights that are
    /// not strictly positive and finite are rejected as
    /// [`AdmissionError::TooLarge`].
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, AdmissionError> {
        let inner = &self.inner;
        let mut st = lock(&inner.state);
        if st.draining || inner.shutdown.load(Ordering::Acquire) {
            counter_add("serve.jobs.rejected", 1);
            return Err(AdmissionError::Draining);
        }
        let weight = spec.weight;
        if !weight.is_finite() || weight <= 0.0 || weight > inner.cfg.capacity {
            counter_add("serve.jobs.rejected", 1);
            return Err(AdmissionError::TooLarge {
                requested: weight,
                capacity: inner.cfg.capacity,
            });
        }
        let in_flight = st.running_weight + st.queued_weight;
        let limit = inner.cfg.capacity + inner.cfg.queue_limit;
        if in_flight + weight > limit {
            counter_add("serve.jobs.rejected", 1);
            return Err(AdmissionError::Overloaded {
                requested: weight,
                in_flight,
                limit,
            });
        }
        let id = st.next_id;
        st.next_id += 1;
        let name = spec.name.clone();
        st.jobs.insert(
            id,
            Job {
                spec: Arc::new(spec),
                phase: Phase::Queued {
                    not_before: Instant::now(),
                },
                attempts: 0,
                recoveries: 0,
                cancel: Arc::new(AtomicBool::new(false)),
                ckpt: Arc::new(Mutex::new(CkptSlots::default())),
            },
        );
        st.queue.push_back(id);
        st.queued_weight += weight;
        counter_add("serve.jobs.submitted", 1);
        st.publish_gauges();
        inner.trace.emit(
            JobId(id),
            "submitted",
            &[Field::Str("name", name), Field::Num("weight", weight)],
        );
        inner.wake.notify_all();
        Ok(JobId(id))
    }

    /// The job's current status, or `None` for an unknown identity.
    #[must_use]
    pub fn poll(&self, id: JobId) -> Option<JobStatus> {
        lock(&self.inner.state).status_of(id.0)
    }

    /// Request cancellation. A queued job transitions to
    /// [`JobStatus::Cancelled`] immediately; a running job settles as
    /// [`JobStatus::Done`] with an [`Exploration::Partial`] carrying
    /// [`StopReason::Cancelled`] and whatever incumbent it had at its next
    /// step boundary. Returns `false` when the job is unknown or already
    /// terminal.
    pub fn cancel(&self, id: JobId) -> bool {
        let inner = &self.inner;
        let mut st = lock(&inner.state);
        let Some(job) = st.jobs.get_mut(&id.0) else {
            return false;
        };
        match job.phase {
            Phase::Queued { .. } => {
                job.phase = Phase::Cancelled;
                let weight = job.spec.weight;
                st.queue.retain(|&q| q != id.0);
                st.queued_weight -= weight;
                counter_add("serve.jobs.cancelled", 1);
                st.publish_gauges();
                inner.trace.emit(id, "cancelled", &[]);
                emit_final_metrics(inner, id);
                inner.settled.notify_all();
                true
            }
            Phase::Running => {
                job.cancel.store(true, Ordering::Release);
                inner.trace.emit(id, "cancel_requested", &[]);
                true
            }
            Phase::Done { .. } | Phase::Cancelled | Phase::Quarantined { .. } => false,
        }
    }

    /// Block until the job reaches a terminal state and return it, or
    /// `None` for an unknown identity.
    #[must_use]
    pub fn wait(&self, id: JobId) -> Option<JobStatus> {
        let inner = &self.inner;
        let mut st = lock(&inner.state);
        loop {
            match st.status_of(id.0) {
                None => return None,
                Some(status) if status.is_terminal() => return Some(status),
                Some(_) => {
                    st = inner
                        .settled
                        .wait(st)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            }
        }
    }

    /// Stop admitting new work, wait for every admitted job to settle, and
    /// return all terminal statuses in submission order. Further
    /// submissions are rejected with [`AdmissionError::Draining`].
    pub fn drain(&self) -> Vec<(JobId, JobStatus)> {
        let inner = &self.inner;
        let mut st = lock(&inner.state);
        st.draining = true;
        while !st.all_terminal() {
            st = inner
                .settled
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
        let ids: Vec<u64> = st.jobs.keys().copied().collect();
        ids.into_iter()
            .filter_map(|id| st.status_of(id).map(|s| (JobId(id), s)))
            .collect()
    }

    /// Remove a terminal job from the server, returning its final status.
    /// Running or queued jobs are not evicted (returns `None`; cancel
    /// first).
    pub fn take(&self, id: JobId) -> Option<JobStatus> {
        let mut st = lock(&self.inner.state);
        let status = st.status_of(id.0)?;
        if !status.is_terminal() {
            return None;
        }
        st.jobs.remove(&id.0);
        counter_add("serve.jobs.evicted", 1);
        Some(status)
    }

    /// Jobs currently waiting in the admission queue.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        lock(&self.inner.state).queue.len()
    }

    /// One metrics scrape in the Prometheus text exposition format — the
    /// future wire API's `/metrics` endpoint body.
    ///
    /// The document is the process-global `contrarc-obs` registry (all
    /// `contrarc_*` counters, gauges with `_max` high-water companions, and
    /// histograms with quantile estimates) rendered by
    /// [`contrarc_obs::export::expose_metrics`], followed by the server's
    /// label dimensions: `contrarc_serve_tenant_jobs{tenant,phase}` job
    /// counts and per-job `contrarc_serve_job_*{tenant,job}` gauges
    /// (attempts, recoveries, checkpoint writes, weight). Registry metrics
    /// only accumulate inside a [`contrarc_obs::metrics::with_metrics`]
    /// scope; the server's own dimensions are always present.
    #[must_use]
    pub fn metrics_text(&self) -> String {
        self.inner.metrics_text()
    }

    /// Stream [`Self::metrics_text`] snapshots to `writer` every `interval`
    /// until the returned [`MetricsWatch`] is dropped (one final snapshot is
    /// written on stop). The watch holds only a weak server reference, so it
    /// cannot keep a dropped server alive; it ends on its own once the
    /// server is gone.
    #[must_use]
    pub fn metrics_watch(
        &self,
        interval: std::time::Duration,
        writer: Box<dyn std::io::Write + Send>,
    ) -> MetricsWatch {
        let weak = Arc::downgrade(&self.inner);
        MetricsWatch::spawn(
            interval,
            writer,
            Box::new(move || weak.upgrade().map(|inner| inner.metrics_text())),
        )
    }
}

impl Drop for JobServer {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.wake.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// One claimed unit of work, extracted under the state lock and executed
/// outside it.
struct Claim {
    id: u64,
    spec: Arc<JobSpec>,
    attempt: u32,
    cancel: Arc<AtomicBool>,
    ckpt: Arc<Mutex<CkptSlots>>,
}

fn worker_loop(inner: &Inner) {
    loop {
        let Some(claim) = next_claim(inner) else {
            return; // shutdown
        };
        let outcome = match catch_unwind(AssertUnwindSafe(|| run_attempt(inner, &claim))) {
            Ok(Ok(result)) => AttemptOutcome::Settled(result),
            Ok(Err(err)) => AttemptOutcome::Failed(err.to_string()),
            Err(payload) => {
                let message = panic_message(payload.as_ref());
                inner.trace.emit(
                    JobId(claim.id),
                    "worker_panic",
                    &[
                        Field::Int("attempt", u64::from(claim.attempt)),
                        Field::Str("message", message.clone()),
                    ],
                );
                AttemptOutcome::Failed(format!("worker panicked: {message}"))
            }
        };
        settle(inner, &claim, outcome);
    }
}

/// Block until an eligible queued job exists (its backoff has elapsed and
/// its weight fits the running capacity), claim it, and mark it running.
/// Returns `None` on shutdown.
fn next_claim(inner: &Inner) -> Option<Claim> {
    let mut st = lock(&inner.state);
    loop {
        if inner.shutdown.load(Ordering::Acquire) {
            return None;
        }
        let now = Instant::now();
        let mut chosen = None;
        let mut next_retry: Option<Instant> = None;
        for (pos, &id) in st.queue.iter().enumerate() {
            let job = &st.jobs[&id];
            let Phase::Queued { not_before } = job.phase else {
                continue;
            };
            if not_before > now {
                next_retry = Some(next_retry.map_or(not_before, |t| t.min(not_before)));
                continue;
            }
            if st.running_weight + job.spec.weight <= inner.cfg.capacity + 1e-9 {
                chosen = Some(pos);
                break;
            }
        }
        if let Some(pos) = chosen {
            let id = st.queue.remove(pos).expect("chosen position is in queue");
            let job = st.jobs.get_mut(&id).expect("queued job exists");
            job.phase = Phase::Running;
            job.attempts += 1;
            if job.attempts > 1 {
                job.recoveries += 1;
                counter_add("serve.recoveries", 1);
            }
            let weight = job.spec.weight;
            let claim = Claim {
                id,
                spec: Arc::clone(&job.spec),
                attempt: job.attempts,
                cancel: Arc::clone(&job.cancel),
                ckpt: Arc::clone(&job.ckpt),
            };
            st.queued_weight -= weight;
            st.running_weight += weight;
            gauge_add("serve.workers.busy", 1);
            st.publish_gauges();
            return Some(claim);
        }
        st = match next_retry {
            Some(at) => {
                inner
                    .wake
                    .wait_timeout(st, at.saturating_duration_since(now))
                    .unwrap_or_else(PoisonError::into_inner)
                    .0
            }
            None => inner.wake.wait(st).unwrap_or_else(PoisonError::into_inner),
        };
    }
}

/// Run one supervised attempt of a job: resolve the starting point (latest
/// checkpoint → previous checkpoint → scratch), then drive the explorer
/// step by step, checkpointing on the configured cadence and honouring
/// cancellation and shutdown between steps.
fn run_attempt(inner: &Inner, claim: &Claim) -> Result<Exploration, ExploreError> {
    let id = JobId(claim.id);
    let spec = &claim.spec;
    #[cfg(feature = "fault-injection")]
    let chaos = inner
        .cfg
        .chaos
        .as_ref()
        .map_or(crate::chaos::AttemptChaos::CLEAN, |c| {
            crate::chaos::plan_attempt(c, claim.id, claim.attempt, inner.cfg.max_attempts)
        });

    let (mut explorer, resume_src) = resolve_start(inner, id, spec, &claim.ckpt)?;
    inner.trace.emit(
        id,
        "attempt_start",
        &[
            Field::Int("attempt", u64::from(claim.attempt)),
            Field::Str("resume", resume_src.to_string()),
        ],
    );

    let mut steps: u64 = 0;
    loop {
        if inner.shutdown.load(Ordering::Acquire) || claim.cancel.load(Ordering::Acquire) {
            return Ok(harvest_cancelled(&explorer));
        }
        let step = explorer.step()?;
        steps += 1;
        match &step {
            Step::Pruned { candidate, .. } => {
                fire_incumbent(inner, id, spec, &explorer, candidate.cost(), false);
            }
            Step::Optimal(arch) => {
                fire_incumbent(inner, id, spec, &explorer, arch.cost(), true);
            }
            Step::Infeasible | Step::Exhausted(_) => {}
        }
        match step {
            Step::Optimal(architecture) => {
                return Ok(Exploration::Optimal {
                    architecture,
                    stats: *explorer.stats(),
                });
            }
            Step::Infeasible => {
                return Ok(Exploration::Infeasible {
                    stats: *explorer.stats(),
                });
            }
            Step::Exhausted(reason) => {
                return Ok(Exploration::Partial {
                    incumbent: explorer.incumbent().cloned(),
                    lower_bound: explorer.lower_bound(),
                    cuts: explorer.stats().cuts_added,
                    stats: *explorer.stats(),
                    reason,
                });
            }
            Step::Pruned { .. } => {}
        }

        #[cfg(feature = "fault-injection")]
        if chaos.panic_after_steps == Some(steps) {
            if chaos.truncate_before_panic {
                let torn = crate::chaos::torn_write(&explorer.checkpoint().to_text());
                lock(&claim.ckpt).store(torn);
                counter_add("serve.checkpoints.written", 1);
                inner.trace.emit(
                    id,
                    "checkpoint",
                    &[Field::Int("step", steps), Field::Str("torn", "true".into())],
                );
            }
            panic!(
                "chaos: injected worker panic ({id}, attempt {}, step {steps})",
                claim.attempt
            );
        }

        if inner.cfg.checkpoint_every > 0 && steps.is_multiple_of(inner.cfg.checkpoint_every) {
            let text = explorer.checkpoint().to_text();
            lock(&claim.ckpt).store(text);
            counter_add("serve.checkpoints.written", 1);
            inner
                .trace
                .emit(id, "checkpoint", &[Field::Int("step", steps)]);
        }
    }
}

/// Resolve the starting explorer for an attempt: the latest checkpoint if
/// it parses, else the previous one, else a fresh exploration. Corrupt
/// checkpoints are counted and traced, never fatal — losing a checkpoint
/// costs recomputation, not correctness, because the exploration loop is
/// deterministic from any valid prefix.
fn resolve_start<'p>(
    inner: &Inner,
    id: JobId,
    spec: &'p JobSpec,
    ckpt: &Mutex<CkptSlots>,
) -> Result<(Explorer<'p>, &'static str), ExploreError> {
    let slots = lock(ckpt);
    for (slot, text) in [("latest", &slots.latest), ("prev", &slots.prev)] {
        let Some(text) = text else { continue };
        match Explorer::resume_from_text(&spec.problem, spec.config.clone(), text) {
            Ok(explorer) => return Ok((explorer, slot)),
            Err(err) => {
                counter_add("serve.checkpoints.corrupt", 1);
                inner.trace.emit(
                    id,
                    "corrupt_checkpoint",
                    &[
                        Field::Str("slot", slot.to_string()),
                        Field::Str("error", err.to_string()),
                    ],
                );
            }
        }
    }
    drop(slots);
    Ok((
        Explorer::new(&spec.problem, spec.config.clone())?,
        "scratch",
    ))
}

/// Build the graceful-degradation result for a cancelled (or shutting-down)
/// attempt: everything learned so far, tagged [`StopReason::Cancelled`].
fn harvest_cancelled(explorer: &Explorer<'_>) -> Exploration {
    Exploration::Partial {
        incumbent: explorer.incumbent().cloned(),
        lower_bound: explorer.lower_bound(),
        cuts: explorer.stats().cuts_added,
        stats: *explorer.stats(),
        reason: StopReason::Cancelled,
    }
}

fn fire_incumbent(
    inner: &Inner,
    id: JobId,
    spec: &JobSpec,
    explorer: &Explorer<'_>,
    cost: f64,
    verified: bool,
) {
    let Some(callback) = &inner.cfg.on_incumbent else {
        return;
    };
    callback(&IncumbentEvent {
        job: id,
        name: spec.name.clone(),
        cost,
        lower_bound: explorer.lower_bound(),
        iteration: explorer.stats().iterations,
        verified,
    });
}

/// Apply an attempt's outcome to the supervisor state: settle, or re-queue
/// with exponential backoff, or quarantine after the final failure.
fn settle(inner: &Inner, claim: &Claim, outcome: AttemptOutcome) {
    let id = JobId(claim.id);
    let mut st = lock(&inner.state);
    let weight = claim.spec.weight;
    st.running_weight -= weight;
    gauge_add("serve.workers.busy", -1);
    let job = st.jobs.get_mut(&claim.id).expect("running job exists");
    let mut terminal = true;
    match outcome {
        AttemptOutcome::Settled(result) => {
            let cancelled = matches!(
                &result,
                Exploration::Partial {
                    reason: StopReason::Cancelled,
                    ..
                }
            );
            let mut fields = vec![
                Field::Str("outcome", outcome_tag(&result).to_string()),
                Field::Int("recoveries", u64::from(job.recoveries)),
            ];
            if let Some(best) = result.incumbent() {
                fields.push(Field::Num("cost", best.cost()));
            }
            if let Some(lb) = result.lower_bound() {
                fields.push(Field::Num("lower_bound", lb));
            }
            inner.trace.emit(id, "done", &fields);
            counter_add(
                if cancelled {
                    "serve.jobs.cancelled"
                } else {
                    "serve.jobs.completed"
                },
                1,
            );
            job.phase = Phase::Done { result };
        }
        AttemptOutcome::Failed(error) => {
            if job.attempts >= inner.cfg.max_attempts {
                counter_add("serve.jobs.quarantined", 1);
                inner.trace.emit(
                    id,
                    "quarantined",
                    &[
                        Field::Int("attempts", u64::from(job.attempts)),
                        Field::Str("error", error.clone()),
                    ],
                );
                job.phase = Phase::Quarantined { last_error: error };
            } else {
                let backoff = backoff_ms(&inner.cfg, job.attempts);
                counter_add("serve.retries", 1);
                inner.trace.emit(
                    id,
                    "retry",
                    &[
                        Field::Int("attempt", u64::from(job.attempts)),
                        Field::Int("backoff_ms", backoff),
                        Field::Str("error", error),
                    ],
                );
                job.phase = Phase::Queued {
                    not_before: Instant::now() + std::time::Duration::from_millis(backoff),
                };
                st.queue.push_back(claim.id);
                st.queued_weight += weight;
                terminal = false;
            }
        }
    }
    st.publish_gauges();
    if terminal {
        emit_final_metrics(inner, id);
    }
    inner.wake.notify_all();
    inner.settled.notify_all();
}

/// Close a job's lifecycle trace with a full metrics snapshot, so every
/// per-job trace file ends with the registry state the job settled under.
/// Skipped entirely when tracing is off — a snapshot render is not free.
fn emit_final_metrics(inner: &Inner, id: JobId) {
    if !inner.trace.enabled() {
        return;
    }
    inner.trace.emit(
        id,
        "metrics_snapshot",
        &[Field::Json("metrics", snapshot().to_json())],
    );
}

fn outcome_tag(result: &Exploration) -> &'static str {
    match result {
        Exploration::Optimal { .. } => "optimal",
        Exploration::Infeasible { .. } => "infeasible",
        Exploration::Partial {
            reason: StopReason::Cancelled,
            ..
        } => "cancelled",
        Exploration::Partial { .. } => "partial",
    }
}

/// Exponential backoff for retry `attempts` (1-based): `base · 2^(n-1)`,
/// capped.
fn backoff_ms(cfg: &ServerConfig, attempts: u32) -> u64 {
    let shift = attempts.saturating_sub(1).min(20);
    cfg.backoff_base_ms
        .saturating_mul(1_u64 << shift)
        .min(cfg.backoff_cap_ms)
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// `ExplorerConfig` is part of `JobSpec`; re-exported here so job
/// construction needs only this crate in scope.
pub type JobConfig = ExplorerConfig;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let cfg = ServerConfig {
            backoff_base_ms: 5,
            backoff_cap_ms: 35,
            ..ServerConfig::default()
        };
        assert_eq!(backoff_ms(&cfg, 1), 5);
        assert_eq!(backoff_ms(&cfg, 2), 10);
        assert_eq!(backoff_ms(&cfg, 3), 20);
        assert_eq!(backoff_ms(&cfg, 4), 35);
        assert_eq!(backoff_ms(&cfg, 64), 35);
    }

    #[test]
    fn checkpoint_slots_shift_latest_into_prev() {
        let mut slots = CkptSlots::default();
        slots.store("a".into());
        slots.store("b".into());
        assert_eq!(slots.latest.as_deref(), Some("b"));
        assert_eq!(slots.prev.as_deref(), Some("a"));
        assert_eq!(slots.writes, 2);
    }

    #[test]
    fn server_config_debug_omits_callback_body() {
        let dbg = format!("{:?}", ServerConfig::default());
        assert!(dbg.contains("workers: 2"));
        assert!(dbg.contains("on_incumbent: false"));
    }
}
