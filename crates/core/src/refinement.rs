//! Problem 3 / Algorithm 1: (compositional) contract refinement verification
//! of a candidate architecture against the system-level contracts.

use crate::candidate::{ArchNode, Architecture};
use crate::gen::{build_flow_model, build_timing_model, CheckModel};
use crate::problem::Problem;
use crate::viewpoint::Viewpoint;
use contrarc_contracts::RefinementChecker;
use contrarc_graph::paths::all_simple_paths;
use contrarc_graph::{canonical_form, DiGraph, NodeId};
use contrarc_milp::SolveError;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The invalid sub-architecture `𝒢_map` a failed refinement identifies.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ViolationScope {
    /// A single source→sink path (architecture node ids, in path order).
    Path(Vec<NodeId>),
    /// The whole candidate architecture (`𝒢_map = 𝒜_map`).
    Whole,
}

/// A refinement failure: the violated viewpoint `d_v` plus the invalid
/// sub-architecture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Violation {
    /// The viewpoint whose system contract is not refined.
    pub viewpoint: Viewpoint,
    /// The invalid sub-architecture.
    pub scope: ViolationScope,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.scope {
            ViolationScope::Path(nodes) => {
                write!(
                    f,
                    "{} violated on a {}-node path",
                    self.viewpoint,
                    nodes.len()
                )
            }
            ViolationScope::Whole => {
                write!(f, "{} violated on the whole architecture", self.viewpoint)
            }
        }
    }
}

/// Options for refinement checking.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefinementConfig {
    /// Check path-specific viewpoints per source→sink path (Algorithm 1). If
    /// `false`, every viewpoint is checked monolithically on the whole
    /// architecture.
    pub compositional: bool,
    /// Cap on path enumeration (safety valve).
    pub max_paths: usize,
    /// Worker threads for per-path refinement checks in the collect-all mode
    /// (`0` = all available cores). Any value yields the same violations,
    /// verdicts, and cache counters: the per-path results are assembled in
    /// path-enumeration order regardless of completion order.
    pub threads: usize,
}

impl Default for RefinementConfig {
    fn default() -> Self {
        RefinementConfig {
            compositional: true,
            max_paths: 100_000,
            threads: 1,
        }
    }
}

/// Cache-key tag: compositional timing check of one source→sink path.
const KEY_TIMING_PATH: u8 = 0;
/// Cache-key tag: monolithic timing check of the whole architecture.
const KEY_TIMING_WHOLE: u8 = 1;
/// Cache-key tag: flow check of the whole architecture.
const KEY_FLOW: u8 = 2;

/// A memo of refinement verdicts keyed by the *canonical form* of the checked
/// sub-architecture.
///
/// Every check model in this module is determined, up to a renaming of
/// variables that cannot change the verdict, by (a) which kind of check it is
/// and (b) the scope graph labeled with each node's
/// `(type, implementation)` pair. Keying on
/// [`canonical_form`] therefore reuses a verdict across *isomorphic* scopes:
/// two different candidates that route through label-identical paths share
/// one cached check, as do relabelings of the same candidate.
///
/// The cache is only sound for a fixed [`Problem`] (specs and library
/// attributes are baked into the models but not the keys) — use one cache per
/// exploration, as [`Explorer`](crate::Explorer) does.
///
/// All methods take `&self`; the cache is shared freely across the worker
/// threads of a parallel refinement wave. Hit/miss counters are deterministic
/// for any thread count because lookups happen in the serial key pass, never
/// in the workers.
#[derive(Debug, Default)]
pub struct RefinementCache {
    verdicts: Mutex<HashMap<Vec<u8>, bool>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl RefinementCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of lookups answered from the cache (including lookups answered
    /// by a computation already in flight in the same wave).
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that required a fresh refinement check.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct verdicts stored.
    ///
    /// # Panics
    ///
    /// Panics if a cache user panicked while holding the internal lock.
    #[must_use]
    pub fn len(&self) -> usize {
        self.verdicts.lock().expect("cache lock poisoned").len()
    }

    /// Whether no verdict has been stored yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lookup(&self, key: &[u8]) -> Option<bool> {
        self.verdicts
            .lock()
            .expect("cache lock poisoned")
            .get(key)
            .copied()
    }

    fn store(&self, key: Vec<u8>, verdict: bool) {
        self.verdicts
            .lock()
            .expect("cache lock poisoned")
            .insert(key, verdict);
    }

    fn note_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        contrarc_obs::metrics::counter_add("refine.cache_hits", 1);
    }

    fn note_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        contrarc_obs::metrics::counter_add("refine.cache_misses", 1);
    }
}

/// The canonicalization label of a scope node: its `(type, implementation)`
/// pair, rendered as bytes.
fn scope_label(w: &ArchNode) -> Vec<u8> {
    let mut b = Vec::with_capacity(8);
    b.extend_from_slice(&w.ty.0.to_le_bytes());
    b.extend_from_slice(&w.implementation.0.to_le_bytes());
    b
}

/// Cache key for a path-scoped timing check: the canonical form of the
/// labeled path chain.
fn path_cache_key(arch: &Architecture, path: &[NodeId]) -> Vec<u8> {
    let mut g: DiGraph<Vec<u8>, ()> = DiGraph::new();
    let ids: Vec<NodeId> = path
        .iter()
        .map(|&n| g.add_node(scope_label(arch.graph().node_weight(n))))
        .collect();
    for w in ids.windows(2) {
        g.add_edge(w[0], w[1], ());
    }
    let mut key = vec![KEY_TIMING_PATH];
    key.extend_from_slice(canonical_form(&g, Clone::clone).as_bytes());
    key
}

/// Cache key for a whole-architecture check: the canonical form of the full
/// labeled candidate graph, tagged with the check kind.
fn whole_cache_key(kind: u8, arch: &Architecture) -> Vec<u8> {
    let g = arch.graph();
    let mut h: DiGraph<Vec<u8>, ()> = DiGraph::new();
    let ids: HashMap<NodeId, NodeId> = g
        .nodes()
        .map(|(n, w)| (n, h.add_node(scope_label(w))))
        .collect();
    for e in g.edges() {
        h.add_edge(ids[&e.src], ids[&e.dst], ());
    }
    let mut key = vec![kind];
    key.extend_from_slice(canonical_form(&h, Clone::clone).as_bytes());
    key
}

/// Check a candidate architecture against every active system contract.
/// Returns the first violation found, or `None` when all refinements hold
/// (the candidate is the optimum).
///
/// # Errors
///
/// Propagates encoding/solver errors from the underlying refinement queries.
pub fn check_candidate(
    problem: &Problem,
    arch: &Architecture,
    config: &RefinementConfig,
    checker: &RefinementChecker,
) -> Result<Option<Violation>, SolveError> {
    let found = check_candidate_inner(problem, arch, config, checker, true, None)?;
    Ok(found.into_iter().next())
}

/// Like [`check_candidate`], but collect *every* violation (each violated
/// path plus any whole-architecture failures) instead of stopping at the
/// first. Cutting them all in one exploration iteration prunes faster while
/// reaching the same optimum.
///
/// # Errors
///
/// Propagates encoding/solver errors from the underlying refinement queries.
pub fn check_candidate_all(
    problem: &Problem,
    arch: &Architecture,
    config: &RefinementConfig,
    checker: &RefinementChecker,
) -> Result<Vec<Violation>, SolveError> {
    check_candidate_inner(problem, arch, config, checker, false, None)
}

/// Like [`check_candidate_all`], but with an optional [`RefinementCache`]:
/// verdicts for canonically-identical scopes are served from the cache
/// instead of re-solved, and fresh verdicts are stored for later calls. The
/// returned violations are identical to the uncached call's (the cache only
/// ever replays a verdict the checker itself would produce).
///
/// # Errors
///
/// Propagates encoding/solver errors from the underlying refinement queries.
pub fn check_candidate_all_cached(
    problem: &Problem,
    arch: &Architecture,
    config: &RefinementConfig,
    checker: &RefinementChecker,
    cache: Option<&RefinementCache>,
) -> Result<Vec<Violation>, SolveError> {
    check_candidate_inner(problem, arch, config, checker, false, cache)
}

fn check_candidate_inner(
    problem: &Problem,
    arch: &Architecture,
    config: &RefinementConfig,
    checker: &RefinementChecker,
    stop_at_first: bool,
    cache: Option<&RefinementCache>,
) -> Result<Vec<Violation>, SolveError> {
    let mut out = Vec::new();
    // Path-specific viewpoints first (d_p), then whole-architecture (d_o),
    // mirroring Algorithm 1.
    for vp in problem.spec.active_viewpoints() {
        match vp {
            Viewpoint::Interconnection => {
                // Structural constraints are enforced exactly by the MILP.
            }
            Viewpoint::Timing if config.compositional => {
                let sources = arch.source_nodes(problem);
                let sinks = arch.sink_nodes(problem);
                let paths = all_simple_paths(arch.graph(), &sources, &sinks, config.max_paths);
                if stop_at_first {
                    // Serial early-exit loop: preserves the historical "stop
                    // at the first violated path" work profile.
                    for path in paths {
                        let holds = check_cached(
                            cache,
                            || path_cache_key(arch, &path),
                            || check_timing_path(problem, arch, &path, checker),
                        )?;
                        if !holds {
                            out.push(Violation {
                                viewpoint: Viewpoint::Timing,
                                scope: ViolationScope::Path(path),
                            });
                            return Ok(out);
                        }
                    }
                } else {
                    let verdicts = check_paths_wave(problem, arch, &paths, config, checker, cache)?;
                    for (path, holds) in paths.into_iter().zip(verdicts) {
                        if !holds {
                            out.push(Violation {
                                viewpoint: Viewpoint::Timing,
                                scope: ViolationScope::Path(path),
                            });
                        }
                    }
                }
            }
            Viewpoint::Timing => {
                let holds = check_cached(
                    cache,
                    || whole_cache_key(KEY_TIMING_WHOLE, arch),
                    || {
                        let nodes: Vec<NodeId> = arch.graph().node_ids().collect();
                        let edges: Vec<(NodeId, NodeId)> =
                            arch.graph().edges().map(|e| (e.src, e.dst)).collect();
                        let sources = arch.source_nodes(problem);
                        let sinks = arch.sink_nodes(problem);
                        let model =
                            build_timing_model(problem, arch, &nodes, &edges, &sources, &sinks);
                        refines(&model, checker)
                    },
                )?;
                if !holds {
                    out.push(Violation {
                        viewpoint: Viewpoint::Timing,
                        scope: ViolationScope::Whole,
                    });
                    if stop_at_first {
                        return Ok(out);
                    }
                }
            }
            Viewpoint::Flow => {
                let holds = check_cached(
                    cache,
                    || whole_cache_key(KEY_FLOW, arch),
                    || refines(&build_flow_model(problem, arch), checker),
                )?;
                if !holds {
                    out.push(Violation {
                        viewpoint: Viewpoint::Flow,
                        scope: ViolationScope::Whole,
                    });
                    if stop_at_first {
                        return Ok(out);
                    }
                }
            }
        }
    }
    Ok(out)
}

/// One compositional timing check: build the path-scoped model and decide
/// refinement.
fn check_timing_path(
    problem: &Problem,
    arch: &Architecture,
    path: &[NodeId],
    checker: &RefinementChecker,
) -> Result<bool, SolveError> {
    let mut path_span = contrarc_obs::span!("refine.path", nodes = path.len());
    let timer = contrarc_obs::metrics::metrics_enabled().then(std::time::Instant::now);
    let edges: Vec<(NodeId, NodeId)> = path.windows(2).map(|w| (w[0], w[1])).collect();
    let model = build_timing_model(
        problem,
        arch,
        path,
        &edges,
        &path[..1],
        &path[path.len() - 1..],
    );
    let verdict = refines(&model, checker);
    contrarc_obs::metrics::counter_add("refine.path_checks", 1);
    if let Some(t0) = timer {
        contrarc_obs::metrics::observe_hist(
            "refine.path_check_secs",
            contrarc_obs::metrics::SECONDS_BUCKETS,
            t0.elapsed().as_secs_f64(),
        );
    }
    if let Ok(holds) = &verdict {
        path_span.record("holds", *holds);
    }
    verdict
}

/// Run one check through the cache (when present): lookup by key, compute on
/// miss, store the fresh verdict.
fn check_cached(
    cache: Option<&RefinementCache>,
    key: impl FnOnce() -> Vec<u8>,
    compute: impl FnOnce() -> Result<bool, SolveError>,
) -> Result<bool, SolveError> {
    let Some(cache) = cache else {
        return compute();
    };
    let key = key();
    if let Some(v) = cache.lookup(&key) {
        cache.note_hit();
        return Ok(v);
    }
    cache.note_miss();
    let v = compute()?;
    cache.store(key, v);
    Ok(v)
}

/// Check every path, in parallel across `config.threads` workers, returning
/// per-path verdicts in path-enumeration order.
///
/// The wave is deterministic for any thread count. Keys are computed and
/// deduplicated serially in path order — the first path with a given
/// canonical form is the *representative* that gets checked; later
/// label-isomorphic paths count as hits and reuse its verdict. Only the
/// representatives go to the parallel workers, and their results are
/// reassembled by index, so the verdicts, cache contents, and hit/miss
/// counters never depend on scheduling. Errors surface in path order (the
/// first representative, by path index, that failed).
fn check_paths_wave(
    problem: &Problem,
    arch: &Architecture,
    paths: &[Vec<NodeId>],
    config: &RefinementConfig,
    checker: &RefinementChecker,
    cache: Option<&RefinementCache>,
) -> Result<Vec<bool>, SolveError> {
    let Some(cache) = cache else {
        return contrarc_par::parallel_map(config.threads, paths.len(), |i| {
            check_timing_path(problem, arch, &paths[i], checker)
        })
        .into_iter()
        .collect();
    };

    /// How one path's verdict resolves: already cached, or pending on the
    /// `j`-th representative of this wave.
    enum Slot {
        Known(bool),
        Pending(usize),
    }
    let mut slots: Vec<Slot> = Vec::with_capacity(paths.len());
    let mut reps: Vec<usize> = Vec::new();
    let mut rep_keys: Vec<Vec<u8>> = Vec::new();
    let mut pending: HashMap<Vec<u8>, usize> = HashMap::new();
    for (i, path) in paths.iter().enumerate() {
        let key = path_cache_key(arch, path);
        if let Some(v) = cache.lookup(&key) {
            cache.note_hit();
            slots.push(Slot::Known(v));
        } else if let Some(&j) = pending.get(&key) {
            // A serial cached pass would also hit here: the representative's
            // verdict lands in the cache before this path is reached.
            cache.note_hit();
            slots.push(Slot::Pending(j));
        } else {
            cache.note_miss();
            let j = reps.len();
            pending.insert(key.clone(), j);
            reps.push(i);
            rep_keys.push(key);
            slots.push(Slot::Pending(j));
        }
    }

    let computed: Vec<Result<bool, SolveError>> =
        contrarc_par::parallel_map(config.threads, reps.len(), |j| {
            check_timing_path(problem, arch, &paths[reps[j]], checker)
        });
    for (key, result) in rep_keys.into_iter().zip(&computed) {
        if let Ok(v) = result {
            cache.store(key, *v);
        }
    }
    slots
        .into_iter()
        .map(|slot| match slot {
            Slot::Known(v) => Ok(v),
            Slot::Pending(j) => computed[j].clone(),
        })
        .collect()
}

fn refines(model: &CheckModel, checker: &RefinementChecker) -> Result<bool, SolveError> {
    let composition = model.composition();
    let r = checker.check(&model.vocabulary, &composition, &model.system_contract)?;
    Ok(r.holds())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::{Attrs, COST, FLOW_CONS, FLOW_GEN, JITTER_OUT, LATENCY, THROUGHPUT};
    use crate::encode::encode_problem2;
    use crate::problem::{FlowSpec, SystemSpec, TimingSpec};
    use crate::template::{Template, TypeConfig};
    use crate::Library;
    use contrarc_milp::SolveOptions;

    /// Two parallel lines, the B line slower than the A line.
    fn two_line_problem(max_latency: f64) -> (Problem, Architecture) {
        let mut t = Template::new("two");
        let src_t = t.add_type("src", TypeConfig::source());
        let mach_t = t.add_type("mach", TypeConfig::bounded(2, 2));
        let sink_t = t.add_type("sink", TypeConfig::sink());
        let sa = t.add_node("SA", src_t);
        let ma = t.add_node("MA", mach_t);
        let ka = t.add_required_node("KA", sink_t);
        let sb = t.add_node("SB", src_t);
        let mb = t.add_node("MB", mach_t);
        let kb = t.add_required_node("KB", sink_t);
        t.add_candidate_edge(sa, ma);
        t.add_candidate_edge(ma, ka);
        t.add_candidate_edge(sb, mb);
        t.add_candidate_edge(mb, kb);

        let mut lib = Library::new();
        lib.add(
            "S",
            src_t,
            Attrs::new()
                .with(COST, 1.0)
                .with(FLOW_GEN, 10.0)
                .with(LATENCY, 1.0),
        );
        // Single machine impl with latency 12 — the B path (2 machines deep
        // below) stays fine but tight bounds trip it.
        lib.add(
            "M",
            mach_t,
            Attrs::new()
                .with(COST, 2.0)
                .with(THROUGHPUT, 20.0)
                .with(LATENCY, 12.0)
                .with(JITTER_OUT, 0.0),
        );
        lib.add(
            "K",
            sink_t,
            Attrs::new()
                .with(COST, 1.0)
                .with(FLOW_CONS, 5.0)
                .with(LATENCY, 1.0),
        );
        let spec = SystemSpec {
            flow: Some(FlowSpec {
                max_supply: 100.0,
                max_consumption: 100.0,
            }),
            timing: Some(TimingSpec {
                max_latency,
                max_input_jitter: 1.0,
                max_output_jitter: 1.0,
            }),
            flow_cap: 100.0,
            horizon: 1000.0,
        };
        let p = Problem::new(t, lib, spec);
        let enc = encode_problem2(&p).unwrap();
        let sol = enc
            .model
            .solve(&SolveOptions::default())
            .unwrap()
            .expect_optimal()
            .unwrap();
        let arch = Architecture::decode(&p, &enc, &sol);
        (p, arch)
    }

    #[test]
    fn passes_when_bound_generous() {
        let (p, arch) = two_line_problem(50.0);
        let v = check_candidate(
            &p,
            &arch,
            &RefinementConfig::default(),
            &RefinementChecker::new(),
        )
        .unwrap();
        assert!(v.is_none(), "unexpected violation: {v:?}");
    }

    #[test]
    fn compositional_failure_reports_path() {
        // Path latency = 1 + 12 + 1 = 14 > 10.
        let (p, arch) = two_line_problem(10.0);
        let v = check_candidate(
            &p,
            &arch,
            &RefinementConfig::default(),
            &RefinementChecker::new(),
        )
        .unwrap()
        .expect("violation expected");
        assert_eq!(v.viewpoint, Viewpoint::Timing);
        match &v.scope {
            ViolationScope::Path(nodes) => assert_eq!(nodes.len(), 3),
            other => panic!("expected path scope, got {other:?}"),
        }
    }

    #[test]
    fn monolithic_failure_reports_whole() {
        let (p, arch) = two_line_problem(10.0);
        let cfg = RefinementConfig {
            compositional: false,
            ..RefinementConfig::default()
        };
        let v = check_candidate(&p, &arch, &cfg, &RefinementChecker::new())
            .unwrap()
            .expect("violation expected");
        assert_eq!(v.viewpoint, Viewpoint::Timing);
        assert_eq!(v.scope, ViolationScope::Whole);
    }

    #[test]
    fn flow_violation_detected_whole() {
        let (mut p, arch) = two_line_problem(50.0);
        // Two sources generate 20 total; cap supply at 15.
        p.spec.flow = Some(FlowSpec {
            max_supply: 15.0,
            max_consumption: 100.0,
        });
        let v = check_candidate(
            &p,
            &arch,
            &RefinementConfig::default(),
            &RefinementChecker::new(),
        )
        .unwrap()
        .expect("violation expected");
        assert_eq!(v.viewpoint, Viewpoint::Flow);
        assert_eq!(v.scope, ViolationScope::Whole);
        assert!(v.to_string().contains("whole"));
    }

    #[test]
    fn cache_replays_verdicts_and_counts_hits() {
        // Two parallel lines with identical (type, implementation) labels:
        // the second path is label-isomorphic to the first, so even the
        // first pass hits once, and a replay hits everywhere.
        let (p, arch) = two_line_problem(10.0);
        let cfg = RefinementConfig::default();
        let checker = RefinementChecker::new();
        let baseline = check_candidate_all(&p, &arch, &cfg, &checker).unwrap();
        let cache = RefinementCache::new();
        let first = check_candidate_all_cached(&p, &arch, &cfg, &checker, Some(&cache)).unwrap();
        assert_eq!(first, baseline);
        assert!(cache.misses() > 0);
        assert!(cache.hits() > 0, "isomorphic sibling path should hit");
        let misses = cache.misses();
        let second = check_candidate_all_cached(&p, &arch, &cfg, &checker, Some(&cache)).unwrap();
        assert_eq!(second, baseline);
        assert_eq!(cache.misses(), misses, "replay must not re-solve");
        assert!(!cache.is_empty());
    }

    #[test]
    fn wave_is_thread_count_invariant() {
        let (p, arch) = two_line_problem(10.0);
        let checker = RefinementChecker::new();
        let baseline =
            check_candidate_all(&p, &arch, &RefinementConfig::default(), &checker).unwrap();
        let reference_cache = RefinementCache::new();
        let _ = check_candidate_all_cached(
            &p,
            &arch,
            &RefinementConfig::default(),
            &checker,
            Some(&reference_cache),
        )
        .unwrap();
        for threads in [2, 8] {
            let cfg = RefinementConfig {
                threads,
                ..RefinementConfig::default()
            };
            // Same violations without a cache...
            let v = check_candidate_all(&p, &arch, &cfg, &checker).unwrap();
            assert_eq!(v, baseline, "uncached, threads={threads}");
            // ... and with one, with bit-identical hit/miss counters.
            let cache = RefinementCache::new();
            let v = check_candidate_all_cached(&p, &arch, &cfg, &checker, Some(&cache)).unwrap();
            assert_eq!(v, baseline, "cached, threads={threads}");
            assert_eq!(cache.hits(), reference_cache.hits(), "threads={threads}");
            assert_eq!(
                cache.misses(),
                reference_cache.misses(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn violation_display_path() {
        let v = Violation {
            viewpoint: Viewpoint::Timing,
            scope: ViolationScope::Path(vec![NodeId::from_index(0)]),
        };
        assert!(v.to_string().contains("1-node path"));
    }
}
