//! Solver error type.

use std::error::Error;
use std::fmt;

/// Errors produced while building or solving a model.
///
/// Infeasibility and unboundedness are *not* errors — they are reported
/// through [`Outcome`](crate::Outcome) because they are meaningful answers to
/// an optimization question. `SolveError` covers malformed input and
/// exhausted resource limits, where no answer is known.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SolveError {
    /// The model is structurally invalid (unknown variable, NaN coefficient,
    /// inverted bounds, ...).
    InvalidModel(String),
    /// The simplex iteration limit was exceeded before convergence.
    IterationLimit {
        /// Limit that was hit.
        limit: u64,
    },
    /// The branch-and-bound node limit was exceeded before the tree was
    /// exhausted.
    NodeLimit {
        /// Limit that was hit.
        limit: u64,
    },
    /// The wall-clock time limit was exceeded.
    TimeLimit {
        /// Limit in seconds that was hit.
        limit_secs: f64,
    },
    /// The solver detected numerical trouble it could not recover from.
    Numerical(String),
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::InvalidModel(msg) => write!(f, "invalid model: {msg}"),
            SolveError::IterationLimit { limit } => {
                write!(f, "simplex iteration limit of {limit} exceeded")
            }
            SolveError::NodeLimit { limit } => {
                write!(f, "branch-and-bound node limit of {limit} exceeded")
            }
            SolveError::TimeLimit { limit_secs } => {
                write!(f, "time limit of {limit_secs} s exceeded")
            }
            SolveError::Numerical(msg) => write!(f, "numerical failure: {msg}"),
        }
    }
}

impl Error for SolveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(SolveError::InvalidModel("x".into())
            .to_string()
            .contains("invalid model"));
        assert!(SolveError::IterationLimit { limit: 9 }
            .to_string()
            .contains('9'));
        assert!(SolveError::NodeLimit { limit: 3 }.to_string().contains('3'));
        assert!(SolveError::TimeLimit { limit_secs: 1.5 }
            .to_string()
            .contains("1.5"));
        assert!(SolveError::Numerical("bad pivot".into())
            .to_string()
            .contains("bad pivot"));
    }

    #[test]
    fn error_trait_object_safe() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<SolveError>();
    }
}
