//! Bench smoke for the parallel exploration engine (not part of the paper).
//!
//! Explores a small RPL instance at `threads = 1` (the serial baseline) and
//! `threads = 0` (every available core) and writes `BENCH_explore.json`
//! recording per-phase wall-clock times, the refinement-cache hit rate, the
//! parallel speedup, a metrics block (counters and histograms from the
//! observability registry), and the measured `NoopSink` overhead ratio. CI
//! runs this as a smoke check that the parallel engine reproduces the serial
//! optimum; the speedup figure is only meaningful on a multi-core runner, so
//! the core count is recorded next to it.
//!
//! Usage: `explore_bench [--trace-folded] [output-path]`
//! (default `BENCH_explore.json`).
//!
//! `--trace-folded` prints flamegraph.pl-compatible collapsed stacks for the
//! two runs on stdout: `explore_bench --trace-folded | flamegraph.pl > x.svg`.
//! `CONTRARC_TRACE=path.jsonl` writes the full JSONL trace instead.

use contrarc::{explore, ExplorationStats, ExplorerConfig};
use contrarc_obs::event;
use contrarc_obs::sinks::{CollapsedStackSink, NoopSink};
use contrarc_systems::rpl::{build, RplConfig, RplLines};
use std::sync::Arc;
use std::time::Instant;

struct Run {
    threads: usize,
    effective_threads: usize,
    wall_secs: f64,
    cost: f64,
    stats: ExplorationStats,
}

fn run_once(threads: usize) -> Run {
    let p = build(&RplConfig::default(), RplLines::Both);
    let cfg = ExplorerConfig {
        threads,
        ..ExplorerConfig::complete()
    };
    let t0 = Instant::now();
    let result = explore(&p, &cfg).expect("exploration failed");
    let wall_secs = t0.elapsed().as_secs_f64();
    let cost = result
        .architecture()
        .expect("RPL default instance is feasible")
        .cost();
    Run {
        threads,
        effective_threads: contrarc_par::effective_threads(threads),
        wall_secs,
        cost,
        stats: *result.stats(),
    }
}

fn json_run(r: &Run) -> String {
    let s = &r.stats;
    let consulted = s.cache_hits + s.cache_misses;
    let hit_rate = if consulted == 0 {
        0.0
    } else {
        s.cache_hits as f64 / consulted as f64
    };
    format!(
        concat!(
            "    {{\n",
            "      \"threads\": {},\n",
            "      \"effective_threads\": {},\n",
            "      \"wall_secs\": {:.6},\n",
            "      \"milp_secs\": {:.6},\n",
            "      \"refine_secs\": {:.6},\n",
            "      \"cert_secs\": {:.6},\n",
            "      \"iterations\": {},\n",
            "      \"cuts_added\": {},\n",
            "      \"cache_hits\": {},\n",
            "      \"cache_misses\": {},\n",
            "      \"cache_hit_rate\": {:.4},\n",
            "      \"optimum\": {:.6}\n",
            "    }}"
        ),
        r.threads,
        r.effective_threads,
        r.wall_secs,
        s.milp_time,
        s.refine_time,
        s.cert_time,
        s.iterations,
        s.cuts_added,
        s.cache_hits,
        s.cache_misses,
        hit_rate,
        r.cost,
    )
}

/// Minimum wall-clock over `runs` serial explorations.
fn min_wall(runs: usize) -> f64 {
    (0..runs)
        .map(|_| run_once(1).wall_secs)
        .fold(f64::INFINITY, f64::min)
}

/// Measure the `NoopSink` overhead: serial exploration with no sink at all
/// versus with a `NoopSink` installed (which keeps the disabled fast path —
/// one relaxed atomic load per site). Returns `min(noop) / min(bare)`.
fn measure_noop_overhead() -> (f64, f64, f64) {
    let previous = contrarc_obs::uninstall_sink();
    let bare = min_wall(2);
    let noop = contrarc_obs::with_sink(Arc::new(NoopSink), || min_wall(2));
    if let Some(sink) = previous {
        contrarc_obs::install_sink(sink);
    }
    (noop / bare.max(1e-12), bare, noop)
}

fn main() {
    let mut trace_folded = false;
    let mut out_path = "BENCH_explore.json".to_string();
    for arg in std::env::args().skip(1) {
        if arg == "--trace-folded" {
            trace_folded = true;
        } else {
            out_path = arg;
        }
    }

    let folded_sink = if trace_folded {
        let sink = Arc::new(CollapsedStackSink::default());
        contrarc_obs::install_sink(Arc::<CollapsedStackSink>::clone(&sink));
        Some(sink)
    } else {
        contrarc_bench::init_bin_tracing();
        None
    };

    // Serial baseline first, then all cores; warm-up runs excluded on
    // purpose — this is a smoke check, not a statistical benchmark. The
    // metrics registry is enabled around both runs and its snapshot embedded
    // in the report.
    let ((serial, parallel), metrics) =
        contrarc_obs::metrics::with_metrics(|| (run_once(1), run_once(0)));

    assert_eq!(
        serial.cost.to_bits(),
        parallel.cost.to_bits(),
        "parallel optimum must be bit-identical to serial"
    );
    assert_eq!(serial.stats.iterations, parallel.stats.iterations);
    assert_eq!(serial.stats.cuts_added, parallel.stats.cuts_added);

    // Overhead guard: an installed NoopSink must be free (within noise).
    let (noop_ratio, bare_secs, noop_secs) = measure_noop_overhead();
    assert!(
        noop_ratio < 1.05 || (noop_secs - bare_secs).abs() < 0.05,
        "NoopSink overhead out of bounds: bare {bare_secs:.3}s vs noop {noop_secs:.3}s \
         (ratio {noop_ratio:.3})"
    );

    let speedup = serial.wall_secs / parallel.wall_secs.max(1e-12);
    let json = format!(
        concat!(
            "{{\n",
            "  \"case\": \"rpl-default-both\",\n",
            "  \"cores\": {},\n",
            "  \"speedup_serial_over_max_threads\": {:.4},\n",
            "  \"noop_overhead_ratio\": {:.4},\n",
            "  \"metrics\": {},\n",
            "  \"runs\": [\n{},\n{}\n  ]\n",
            "}}\n"
        ),
        contrarc_par::available_parallelism(),
        speedup,
        noop_ratio,
        metrics.to_json(),
        json_run(&serial),
        json_run(&parallel),
    );
    std::fs::write(&out_path, &json).expect("write bench report");

    if let Some(sink) = folded_sink {
        // Collapsed stacks on stdout, ready for flamegraph.pl.
        print!("{}", sink.folded());
    }
    event!(
        "explore_bench.done",
        serial_secs = serial.wall_secs,
        parallel_secs = parallel.wall_secs,
        cores = contrarc_par::available_parallelism(),
        speedup = speedup,
        noop_overhead_ratio = noop_ratio,
        out = out_path,
    );
    contrarc_obs::flush_sink();
}
