//! Stress-testing the explorer on randomly generated problems: a sweep over
//! seeds of the synthetic workload generator, reporting per-problem outcomes
//! and aggregate statistics.
//!
//! Run with: `cargo run --release --example synthetic_sweep [count]`

use contrarc::report::render_table;
use contrarc::synth::{generate, SynthConfig};
use contrarc::{explore, ExplorerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let count: usize = std::env::args()
        .nth(1)
        .map_or(10, |s| s.parse().expect("count must be a number"));
    println!("exploring {count} random synthetic problems\n");

    let mut rows = Vec::new();
    let mut feasible = 0usize;
    let mut total_iters = 0usize;
    for seed in 0..count as u64 {
        let problem = generate(&SynthConfig {
            seed,
            ..SynthConfig::default()
        });
        let result = explore(&problem, &ExplorerConfig::complete())?;
        let stats = result.stats();
        if result.architecture().is_some() {
            feasible += 1;
        }
        total_iters += stats.iterations;
        rows.push(vec![
            seed.to_string(),
            problem.template.num_nodes().to_string(),
            problem.template.num_candidate_edges().to_string(),
            stats.iterations.to_string(),
            format!("{:.2}", stats.total_time),
            result
                .architecture()
                .map_or("infeasible".into(), |a| format!("{:.1}", a.cost())),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["seed", "nodes", "edges", "iters", "time (s)", "cost"],
            &rows
        )
    );
    println!(
        "\n{feasible}/{count} feasible, {:.1} iterations on average",
        total_iters as f64 / count as f64
    );
    Ok(())
}
