//! The mixed integer linear programming model.

use crate::constraint::{Cmp, ConstrId, Constraint};
use crate::error::SolveError;
use crate::expr::LinExpr;
use crate::solution::Outcome;
use crate::solver::{SolveOptions, Solver};
use crate::var::{VarDef, VarId, VarType};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Objective sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Sense {
    /// Minimize the objective (default).
    #[default]
    Minimize,
    /// Maximize the objective.
    Maximize,
}

impl fmt::Display for Sense {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sense::Minimize => f.write_str("minimize"),
            Sense::Maximize => f.write_str("maximize"),
        }
    }
}

/// Size statistics of a model, as reported in the paper's Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelStats {
    /// Total number of decision variables.
    pub num_vars: usize,
    /// Number of binary variables.
    pub num_binaries: usize,
    /// Number of general integer variables.
    pub num_integers: usize,
    /// Number of linear constraints.
    pub num_constraints: usize,
}

impl fmt::Display for ModelStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} vars ({} bin, {} int), {} constraints",
            self.num_vars, self.num_binaries, self.num_integers, self.num_constraints
        )
    }
}

/// A mixed integer linear program.
///
/// A `Model` owns its variables and constraints; [`VarId`]s and [`ConstrId`]s
/// index into it. Constraints may be appended after a solve, which is how the
/// ContrArc exploration loop adds infeasibility-certificate cuts between
/// iterations.
///
/// ```rust
/// use contrarc_milp::{Cmp, Model, Sense, SolveOptions};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut m = Model::new("lp");
/// let x = m.add_continuous("x", 0.0, f64::INFINITY);
/// let y = m.add_continuous("y", 0.0, f64::INFINITY);
/// m.add_constr("c1", x + 2.0 * y, Cmp::Le, 14.0)?;
/// m.add_constr("c2", 3.0 * x - y, Cmp::Ge, 0.0)?;
/// m.add_constr("c3", x - y, Cmp::Le, 2.0)?;
/// m.set_objective(Sense::Maximize, 3.0 * x + 4.0 * y);
/// let sol = m.solve(&SolveOptions::default())?.expect_optimal()?;
/// assert!((sol.objective() - 34.0).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Model {
    name: String,
    vars: Vec<VarDef>,
    constrs: Vec<Constraint>,
    objective: LinExpr,
    sense: Sense,
    /// Branching priority multipliers indexed by variable; absent entries
    /// (and models serialized before the field existed) read as `1.0`.
    #[serde(default)]
    branch_priorities: Vec<f64>,
}

impl Model {
    /// Create an empty model.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Model {
            name: name.into(),
            ..Model::default()
        }
    }

    /// Model name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    // ---- variables -------------------------------------------------------

    /// Add a variable from a full definition and return its handle.
    pub fn add_var(&mut self, def: VarDef) -> VarId {
        let id = VarId(u32::try_from(self.vars.len()).expect("too many variables"));
        self.vars.push(def);
        id
    }

    /// Add a continuous variable with the given bounds.
    pub fn add_continuous(&mut self, name: impl Into<String>, lb: f64, ub: f64) -> VarId {
        self.add_var(VarDef::new(name, VarType::Continuous, lb, ub))
    }

    /// Add an integer variable with the given bounds.
    pub fn add_integer(&mut self, name: impl Into<String>, lb: f64, ub: f64) -> VarId {
        self.add_var(VarDef::new(name, VarType::Integer, lb, ub))
    }

    /// Add a binary (0/1) variable.
    pub fn add_binary(&mut self, name: impl Into<String>) -> VarId {
        self.add_var(VarDef::new(name, VarType::Binary, 0.0, 1.0))
    }

    /// Add a free continuous variable (unbounded in both directions).
    pub fn add_free(&mut self, name: impl Into<String>) -> VarId {
        self.add_continuous(name, f64::NEG_INFINITY, f64::INFINITY)
    }

    /// Number of variables.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Definition of a variable.
    ///
    /// # Panics
    ///
    /// Panics if `v` does not belong to this model.
    #[must_use]
    pub fn var(&self, v: VarId) -> &VarDef {
        &self.vars[v.index()]
    }

    /// Name of a variable.
    #[must_use]
    pub fn var_name(&self, v: VarId) -> &str {
        &self.vars[v.index()].name
    }

    /// Iterate over `(id, definition)` for all variables.
    pub fn vars(&self) -> impl Iterator<Item = (VarId, &VarDef)> {
        self.vars
            .iter()
            .enumerate()
            .map(|(i, d)| (VarId::from_index(i), d))
    }

    /// Set the branching priority multiplier of a variable. Branch-and-bound
    /// scales its fractionality-based variable selection score by this
    /// factor, so values above `1.0` pull branching toward `v` (e.g. toward
    /// the leading positions of symmetry-breaking lexicographic rows, where
    /// an early 0-fix lets the row prune the mirror subtree) and values in
    /// `(0, 1)` push it away. The default for every variable is `1.0`.
    ///
    /// # Panics
    ///
    /// Panics if `v` does not belong to this model or `priority` is not
    /// finite and positive.
    pub fn set_branch_priority(&mut self, v: VarId, priority: f64) {
        assert!(v.index() < self.vars.len(), "unknown variable {v:?}");
        assert!(
            priority.is_finite() && priority > 0.0,
            "branch priority must be finite and positive, got {priority}"
        );
        if self.branch_priorities.len() < self.vars.len() {
            self.branch_priorities.resize(self.vars.len(), 1.0);
        }
        self.branch_priorities[v.index()] = priority;
    }

    /// Branching priority multiplier of a variable (`1.0` unless set).
    #[must_use]
    pub fn branch_priority(&self, v: VarId) -> f64 {
        self.branch_priorities
            .get(v.index())
            .copied()
            .unwrap_or(1.0)
    }

    /// Tighten the bounds of a variable (used by branch-and-bound and
    /// presolve). The new bounds need not be contained in the old ones.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::InvalidModel`] if `lb > ub` or a bound is NaN.
    pub fn set_bounds(&mut self, v: VarId, lb: f64, ub: f64) -> Result<(), SolveError> {
        if lb.is_nan() || ub.is_nan() || lb > ub {
            return Err(SolveError::InvalidModel(format!(
                "invalid bounds [{lb}, {ub}] for variable {}",
                self.var_name(v)
            )));
        }
        let d = &mut self.vars[v.index()];
        d.lb = lb;
        d.ub = ub;
        Ok(())
    }

    // ---- constraints -----------------------------------------------------

    /// Add the constraint `expr cmp rhs` and return its handle.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::InvalidModel`] if the expression mentions a
    /// variable that does not belong to this model or contains a non-finite
    /// coefficient.
    pub fn add_constr(
        &mut self,
        name: impl Into<String>,
        expr: impl Into<LinExpr>,
        cmp: Cmp,
        rhs: f64,
    ) -> Result<ConstrId, SolveError> {
        let expr = expr.into();
        self.validate_expr(&expr)?;
        if !rhs.is_finite() {
            return Err(SolveError::InvalidModel(
                "constraint rhs must be finite".into(),
            ));
        }
        let id = ConstrId(u32::try_from(self.constrs.len()).expect("too many constraints"));
        self.constrs.push(Constraint::new(name, expr, cmp, rhs));
        Ok(id)
    }

    /// Add a prebuilt [`Constraint`].
    ///
    /// # Errors
    ///
    /// Same validation as [`Model::add_constr`].
    pub fn add_constraint(&mut self, c: Constraint) -> Result<ConstrId, SolveError> {
        self.validate_expr(&c.expr)?;
        let id = ConstrId(u32::try_from(self.constrs.len()).expect("too many constraints"));
        self.constrs.push(c);
        Ok(id)
    }

    /// Number of constraints.
    #[must_use]
    pub fn num_constrs(&self) -> usize {
        self.constrs.len()
    }

    /// Look up a constraint.
    ///
    /// # Panics
    ///
    /// Panics if `c` does not belong to this model.
    #[must_use]
    pub fn constr(&self, c: ConstrId) -> &Constraint {
        &self.constrs[c.index()]
    }

    /// Iterate over all constraints.
    pub fn constrs(&self) -> impl Iterator<Item = &Constraint> {
        self.constrs.iter()
    }

    // ---- objective -------------------------------------------------------

    /// Set the objective function and sense.
    pub fn set_objective(&mut self, sense: Sense, expr: impl Into<LinExpr>) {
        self.sense = sense;
        self.objective = expr.into();
    }

    /// Current objective expression.
    #[must_use]
    pub fn objective(&self) -> &LinExpr {
        &self.objective
    }

    /// Current objective sense.
    #[must_use]
    pub fn sense(&self) -> Sense {
        self.sense
    }

    // ---- queries ---------------------------------------------------------

    /// Size statistics (vars/binaries/integers/constraints).
    #[must_use]
    pub fn stats(&self) -> ModelStats {
        let num_binaries = self.vars.iter().filter(|d| d.ty == VarType::Binary).count();
        let num_integers = self
            .vars
            .iter()
            .filter(|d| d.ty == VarType::Integer)
            .count();
        ModelStats {
            num_vars: self.vars.len(),
            num_binaries,
            num_integers,
            num_constraints: self.constrs.len(),
        }
    }

    /// Whether the assignment satisfies every constraint, every bound, and
    /// the integrality requirements, within `tol`.
    #[must_use]
    pub fn is_feasible_point(&self, values: &[f64], tol: f64) -> bool {
        if values.len() < self.vars.len() {
            return false;
        }
        for (i, d) in self.vars.iter().enumerate() {
            let x = values[i];
            if x < d.lb - tol || x > d.ub + tol {
                return false;
            }
            if d.ty.is_integral() && (x - x.round()).abs() > tol {
                return false;
            }
        }
        self.constrs.iter().all(|c| c.satisfied_by(values, tol))
    }

    /// Solve the model with the bundled branch-and-bound solver.
    ///
    /// This is a convenience wrapper around [`Solver::solve`].
    ///
    /// # Errors
    ///
    /// Returns a [`SolveError`] if the model is malformed or a resource limit
    /// is hit before the outcome is known.
    pub fn solve(&self, options: &SolveOptions) -> Result<Outcome, SolveError> {
        Solver::new(options.clone()).solve(self)
    }

    fn validate_expr(&self, expr: &LinExpr) -> Result<(), SolveError> {
        if let Some(max) = expr.max_var_index() {
            if max >= self.vars.len() {
                return Err(SolveError::InvalidModel(format!(
                    "expression mentions unknown variable index {max} (model has {})",
                    self.vars.len()
                )));
            }
        }
        for (v, c) in expr.iter() {
            if !c.is_finite() {
                return Err(SolveError::InvalidModel(format!(
                    "non-finite coefficient {c} on variable {}",
                    self.var_name(v)
                )));
            }
        }
        Ok(())
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "model {} ({}):", self.name, self.stats())?;
        writeln!(f, "  {} {}", self.sense, self.objective)?;
        for c in &self.constrs {
            writeln!(f, "  {c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut m = Model::new("t");
        let x = m.add_continuous("x", 0.0, 1.0);
        let b = m.add_binary("b");
        let n = m.add_integer("n", -5.0, 5.0);
        assert_eq!(m.num_vars(), 3);
        assert_eq!(m.var_name(b), "b");
        assert_eq!(m.var(n).ty, VarType::Integer);
        m.add_constr("c", x + b, Cmp::Le, 1.5).unwrap();
        assert_eq!(m.num_constrs(), 1);
        let s = m.stats();
        assert_eq!(s.num_binaries, 1);
        assert_eq!(s.num_integers, 1);
        assert_eq!(s.num_vars, 3);
    }

    #[test]
    fn rejects_unknown_variable() {
        let mut m = Model::new("t");
        let _ = m.add_binary("b");
        let ghost = VarId::from_index(10);
        let err = m
            .add_constr("bad", LinExpr::var(ghost), Cmp::Le, 1.0)
            .unwrap_err();
        assert!(matches!(err, SolveError::InvalidModel(_)));
    }

    #[test]
    fn rejects_nonfinite() {
        let mut m = Model::new("t");
        let x = m.add_continuous("x", 0.0, 1.0);
        assert!(m
            .add_constr("bad", LinExpr::term(x, f64::NAN), Cmp::Le, 1.0)
            .is_err());
        assert!(m
            .add_constr("bad", LinExpr::var(x), Cmp::Le, f64::INFINITY)
            .is_err());
    }

    #[test]
    fn feasibility_check_covers_bounds_and_integrality() {
        let mut m = Model::new("t");
        let x = m.add_continuous("x", 0.0, 1.0);
        let b = m.add_binary("b");
        m.add_constr("c", x + b, Cmp::Le, 1.5).unwrap();
        assert!(m.is_feasible_point(&[0.5, 1.0], 1e-9));
        assert!(!m.is_feasible_point(&[0.5, 0.5], 1e-9), "fractional binary");
        assert!(!m.is_feasible_point(&[1.5, 0.0], 1e-9), "bound violation");
        assert!(
            !m.is_feasible_point(&[1.0, 1.0], 1e-9),
            "constraint violation"
        );
        assert!(!m.is_feasible_point(&[1.0], 1e-9), "short vector");
    }

    #[test]
    fn set_bounds_validates() {
        let mut m = Model::new("t");
        let x = m.add_continuous("x", 0.0, 1.0);
        m.set_bounds(x, 0.25, 0.75).unwrap();
        assert_eq!(m.var(x).lb, 0.25);
        assert!(m.set_bounds(x, 1.0, 0.0).is_err());
    }

    #[test]
    fn display_lists_everything() {
        let mut m = Model::new("d");
        let x = m.add_continuous("x", 0.0, 1.0);
        m.add_constr("c", LinExpr::var(x), Cmp::Ge, 0.5).unwrap();
        m.set_objective(Sense::Minimize, LinExpr::var(x));
        let text = m.to_string();
        assert!(text.contains("minimize"));
        assert!(text.contains("c: x0 >= 0.5"));
    }
}
