//! Differential testing of the LP backends.
//!
//! The dense tableau simplex ([`LpBackend::DenseTableau`]) is kept alive as a
//! reference implementation precisely so the revised simplex can be checked
//! against it: both backends solve the same seeded random LPs and MILPs and
//! must agree on status, optimum, and — for branch-and-bound — the entire
//! incumbent trajectory (the bound/prune/branch trajectory is a function of
//! the LP values, so agreeing incumbents pin far more than the final answer).

use crate::solver::backend::{backend_for, LpRequest};
use crate::solver::budget::Deadline;
use crate::solver::{branch_bound, LpBackend, LpOutcome, SolveOptions};
use crate::standard_form::StandardForm;
use crate::{Cmp, LinExpr, Model, Sense};

/// Tiny deterministic xorshift64* generator; no external RNG crates.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(2685821657736338717).max(1))
    }
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(2685821657736338717)
    }
    /// Uniform in `[lo, hi)`, quantized to 1/64 so coefficients are exact
    /// binary fractions (keeps cross-backend arithmetic comparable).
    fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        let steps = ((hi - lo) * 64.0) as u64;
        lo + (self.next_u64() % steps.max(1)) as f64 / 64.0
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// A random bounded-feasible pure LP: maximize a positive objective under
/// `≤` constraints with nonnegative coefficients (always feasible at 0,
/// always bounded by the variable boxes).
fn random_lp(seed: u64) -> Model {
    let mut rng = Rng::new(seed);
    let n = 4 + rng.below(6) as usize;
    let rows = 3 + rng.below(5) as usize;
    let mut m = Model::new(format!("lp{seed}"));
    let vars: Vec<_> = (0..n)
        .map(|i| m.add_continuous(format!("x{i}"), 0.0, rng.uniform(1.0, 10.0)))
        .collect();
    for r in 0..rows {
        let expr: LinExpr = vars
            .iter()
            .map(|&v| LinExpr::term(v, rng.uniform(0.0, 4.0)))
            .sum();
        m.add_constr(format!("c{r}"), expr, Cmp::Le, rng.uniform(3.0, 20.0))
            .unwrap();
    }
    let obj: LinExpr = vars
        .iter()
        .map(|&v| LinExpr::term(v, rng.uniform(0.5, 5.0)))
        .sum();
    m.set_objective(Sense::Maximize, obj);
    m
}

/// A random bounded-feasible MILP mixing binaries, general integers, and
/// continuous variables; fractional capacities force real branching.
fn random_milp(seed: u64) -> Model {
    let mut rng = Rng::new(seed ^ 0x9e3779b97f4a7c15);
    let n = 6 + rng.below(5) as usize;
    let mut m = Model::new(format!("milp{seed}"));
    let vars: Vec<_> = (0..n)
        .map(|i| match rng.below(3) {
            0 => m.add_binary(format!("b{i}")),
            1 => m.add_integer(format!("z{i}"), 0.0, 5.0),
            _ => m.add_continuous(format!("y{i}"), 0.0, 6.0),
        })
        .collect();
    let rows = 2 + rng.below(3) as usize;
    for r in 0..rows {
        let expr: LinExpr = vars
            .iter()
            .map(|&v| LinExpr::term(v, rng.uniform(0.5, 6.0)))
            .sum();
        m.add_constr(format!("c{r}"), expr, Cmp::Le, rng.uniform(8.0, 30.0))
            .unwrap();
    }
    let obj: LinExpr = vars
        .iter()
        .map(|&v| LinExpr::term(v, rng.uniform(1.0, 9.0)))
        .sum();
    m.set_objective(Sense::Maximize, obj);
    m
}

fn opts_for(backend: LpBackend) -> SolveOptions {
    SolveOptions {
        backend,
        ..SolveOptions::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Both backends agree on the optimum of raw LP relaxations, driven
    /// directly through the backend trait (no branch-and-bound smoothing).
    #[test]
    fn lp_optima_agree_across_backends() {
        for seed in 0..40u64 {
            let m = random_lp(seed);
            let lbs: Vec<f64> = m.vars().map(|(_, d)| d.lb).collect();
            let ubs: Vec<f64> = m.vars().map(|(_, d)| d.ub).collect();
            let sf = StandardForm::build(&m, Some((&lbs, &ubs)));
            let mut objs = Vec::new();
            for backend in [LpBackend::Revised, LpBackend::DenseTableau] {
                let opts = opts_for(backend);
                let solve = backend_for(&opts).solve_lp(&LpRequest {
                    sf: &sf,
                    opts: &opts,
                    deadline: Deadline::unlimited(),
                    warm: None,
                });
                let name = backend_for(&opts).name();
                match solve
                    .result
                    .unwrap_or_else(|e| panic!("seed {seed}: backend {name} errored: {e}"))
                {
                    LpOutcome::Optimal { min_obj, .. } => objs.push((name, min_obj)),
                    other => panic!("seed {seed}: backend {name} returned {other:?}"),
                }
            }
            let (n0, o0) = objs[0];
            let (n1, o1) = objs[1];
            assert!(
                (o0 - o1).abs() <= 1e-6 * (1.0 + o0.abs()),
                "seed {seed}: {n0} found {o0}, {n1} found {o1}"
            );
        }
    }

    /// Both backends produce identical branch-and-bound incumbent
    /// trajectories (every accepted incumbent objective, in commit order) on
    /// seeded random MILPs — warm starts on or off.
    #[test]
    fn milp_incumbent_trajectories_agree_across_backends() {
        for seed in 0..25u64 {
            let m = random_milp(seed);
            for (warm_start, node_warm_start) in [(false, false), (true, false), (true, true)] {
                let mut runs = Vec::new();
                for backend in [LpBackend::Revised, LpBackend::DenseTableau] {
                    let opts = SolveOptions {
                        warm_start,
                        node_warm_start,
                        ..opts_for(backend)
                    };
                    let mut traj = Vec::new();
                    let (outcome, _) = branch_bound::solve_traced(&m, &opts, None, Some(&mut traj))
                        .unwrap_or_else(|e| panic!("seed {seed}: {backend:?} errored: {e}"));
                    let obj = outcome
                        .expect_optimal()
                        .unwrap_or_else(|e| panic!("seed {seed}: {backend:?}: {e}"))
                        .objective();
                    runs.push((backend, obj, traj));
                }
                let (b0, o0, t0) = &runs[0];
                let (b1, o1, t1) = &runs[1];
                assert!(
                    (o0 - o1).abs() <= 1e-6 * (1.0 + o0.abs()),
                    "seed {seed} warm={warm_start}: {b0:?} optimum {o0} vs {b1:?} {o1}"
                );
                assert_eq!(
                    t0.len(),
                    t1.len(),
                    "seed {seed} warm={warm_start}: trajectory lengths differ: \
                     {b0:?} {t0:?} vs {b1:?} {t1:?}"
                );
                for (i, (a, b)) in t0.iter().zip(t1).enumerate() {
                    assert!(
                        (a - b).abs() <= 1e-6 * (1.0 + a.abs()),
                        "seed {seed} warm={warm_start}: incumbent {i} differs: \
                         {b0:?} {a} vs {b1:?} {b}"
                    );
                }
            }
        }
    }

    /// Warm-started and cold solves agree bit-for-bit on the revised
    /// backend's final objective: warm starting changes work, not answers.
    #[test]
    fn warm_and_cold_runs_agree_bitwise_on_revised_backend() {
        for seed in 0..25u64 {
            let m = random_milp(seed);
            let solve_with = |warm_start: bool| {
                let opts = SolveOptions {
                    warm_start,
                    node_warm_start: warm_start,
                    ..opts_for(LpBackend::Revised)
                };
                branch_bound::solve(&m, &opts, None)
                    .unwrap()
                    .0
                    .expect_optimal()
                    .unwrap()
                    .objective()
            };
            let warm = solve_with(true);
            let cold = solve_with(false);
            assert_eq!(
                warm.to_bits(),
                cold.to_bits(),
                "seed {seed}: warm {warm} vs cold {cold}"
            );
        }
    }
}
