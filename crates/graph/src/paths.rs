//! Simple-path enumeration between node sets.
//!
//! Algorithm 1 of the paper composes contracts *along every source→sink
//! path* of a candidate architecture; this module provides that enumeration.

use crate::digraph::{DiGraph, NodeId};

/// Enumerate all simple paths (no repeated node) from any node in `sources`
/// to any node in `sinks`, in depth-first order.
///
/// A node that is both a source and a sink yields the single-node path.
/// `max_paths` caps the enumeration as a safety valve against pathological
/// graphs; the cap is generous enough never to trigger on the paper's
/// case-study sizes.
///
/// ```rust
/// use contrarc_graph::{DiGraph, paths::all_simple_paths};
/// let mut g = DiGraph::new();
/// let s = g.add_node(());
/// let a = g.add_node(());
/// let b = g.add_node(());
/// let t = g.add_node(());
/// g.add_edge(s, a, ());
/// g.add_edge(s, b, ());
/// g.add_edge(a, t, ());
/// g.add_edge(b, t, ());
/// let paths = all_simple_paths(&g, &[s], &[t], 100);
/// assert_eq!(paths.len(), 2);
/// ```
#[must_use]
pub fn all_simple_paths<N, E>(
    graph: &DiGraph<N, E>,
    sources: &[NodeId],
    sinks: &[NodeId],
    max_paths: usize,
) -> Vec<Vec<NodeId>> {
    let mut is_sink = vec![false; graph.num_nodes()];
    for &t in sinks {
        is_sink[t.index()] = true;
    }
    let mut out = Vec::new();
    let mut on_path = vec![false; graph.num_nodes()];
    let mut path = Vec::new();
    // Deduplicate sources while preserving order.
    let mut seen_src = vec![false; graph.num_nodes()];
    for &s in sources {
        if seen_src[s.index()] {
            continue;
        }
        seen_src[s.index()] = true;
        dfs(
            graph,
            s,
            &is_sink,
            &mut on_path,
            &mut path,
            &mut out,
            max_paths,
        );
        if out.len() >= max_paths {
            break;
        }
    }
    out
}

fn dfs<N, E>(
    graph: &DiGraph<N, E>,
    node: NodeId,
    is_sink: &[bool],
    on_path: &mut [bool],
    path: &mut Vec<NodeId>,
    out: &mut Vec<Vec<NodeId>>,
    max_paths: usize,
) {
    if out.len() >= max_paths {
        return;
    }
    on_path[node.index()] = true;
    path.push(node);
    if is_sink[node.index()] {
        out.push(path.clone());
    }
    for next in graph.successors(node) {
        if !on_path[next.index()] {
            dfs(graph, next, is_sink, on_path, path, out, max_paths);
        }
    }
    path.pop();
    on_path[node.index()] = false;
}

/// Nodes reachable from `starts` by forward edges (including the starts).
#[must_use]
pub fn reachable_from<N, E>(graph: &DiGraph<N, E>, starts: &[NodeId]) -> Vec<NodeId> {
    let mut seen = vec![false; graph.num_nodes()];
    let mut stack: Vec<NodeId> = Vec::new();
    for &s in starts {
        if !seen[s.index()] {
            seen[s.index()] = true;
            stack.push(s);
        }
    }
    let mut order = Vec::new();
    while let Some(n) = stack.pop() {
        order.push(n);
        for next in graph.successors(n) {
            if !seen[next.index()] {
                seen[next.index()] = true;
                stack.push(next);
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two parallel production lines sharing no nodes, as in the RPL study.
    fn two_lines() -> (DiGraph<&'static str, ()>, Vec<NodeId>) {
        let mut g = DiGraph::new();
        let ids: Vec<_> = ["s1", "m1", "t1", "s2", "m2", "t2"]
            .iter()
            .map(|&w| g.add_node(w))
            .collect();
        g.add_edge(ids[0], ids[1], ());
        g.add_edge(ids[1], ids[2], ());
        g.add_edge(ids[3], ids[4], ());
        g.add_edge(ids[4], ids[5], ());
        (g, ids)
    }

    #[test]
    fn disjoint_lines_give_one_path_each() {
        let (g, ids) = two_lines();
        let paths = all_simple_paths(&g, &[ids[0], ids[3]], &[ids[2], ids[5]], 100);
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0], vec![ids[0], ids[1], ids[2]]);
        assert_eq!(paths[1], vec![ids[3], ids[4], ids[5]]);
    }

    #[test]
    fn diamond_counts_both_branches() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let s = g.add_node(());
        let a = g.add_node(());
        let b = g.add_node(());
        let t = g.add_node(());
        g.add_edge(s, a, ());
        g.add_edge(s, b, ());
        g.add_edge(a, t, ());
        g.add_edge(b, t, ());
        let paths = all_simple_paths(&g, &[s], &[t], 100);
        assert_eq!(paths.len(), 2);
    }

    #[test]
    fn cycles_do_not_loop_forever() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let s = g.add_node(());
        let a = g.add_node(());
        let t = g.add_node(());
        g.add_edge(s, a, ());
        g.add_edge(a, s, ()); // cycle back
        g.add_edge(a, t, ());
        let paths = all_simple_paths(&g, &[s], &[t], 100);
        assert_eq!(paths, vec![vec![s, a, t]]);
    }

    #[test]
    fn source_equals_sink() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let s = g.add_node(());
        let paths = all_simple_paths(&g, &[s], &[s], 100);
        assert_eq!(paths, vec![vec![s]]);
    }

    #[test]
    fn max_paths_caps_enumeration() {
        // Complete bipartite-ish expander: 2 * 3 * 2 = several paths.
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let s = g.add_node(());
        let mids: Vec<_> = (0..3).map(|_| g.add_node(())).collect();
        let t = g.add_node(());
        for &m in &mids {
            g.add_edge(s, m, ());
            g.add_edge(m, t, ());
        }
        let capped = all_simple_paths(&g, &[s], &[t], 2);
        assert_eq!(capped.len(), 2);
        let full = all_simple_paths(&g, &[s], &[t], 100);
        assert_eq!(full.len(), 3);
    }

    #[test]
    fn duplicate_sources_not_double_counted() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let s = g.add_node(());
        let t = g.add_node(());
        g.add_edge(s, t, ());
        let paths = all_simple_paths(&g, &[s, s], &[t], 100);
        assert_eq!(paths.len(), 1);
    }

    #[test]
    fn no_path_when_disconnected() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let s = g.add_node(());
        let t = g.add_node(());
        let paths = all_simple_paths(&g, &[s], &[t], 100);
        assert!(paths.is_empty());
    }

    #[test]
    fn reachability() {
        let (g, ids) = two_lines();
        let r = reachable_from(&g, &[ids[0]]);
        assert_eq!(r.len(), 3);
        assert!(r.contains(&ids[2]));
        assert!(!r.contains(&ids[3]));
    }
}
