//! The ContrArc exploration loop: Problems 2 → 3 → 4, iterated to the
//! optimum.

use crate::candidate::Architecture;
use crate::certificate::{apply_cuts, CutConfig};
use crate::encode::encode_problem2;
use crate::problem::Problem;
use crate::refinement::{check_candidate_all, RefinementConfig};
use contrarc_contracts::{EncodeOptions, RefinementChecker};
use contrarc_milp::{SolveError, SolveOptions};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use std::time::Instant;

/// Configuration of the exploration loop. The two booleans reproduce the
/// paper's Table II ablations:
///
/// | paper mode                | `iso_pruning` | `compositional` |
/// |---------------------------|---------------|-----------------|
/// | "only subgraph isomorphism" | `true`      | `false`         |
/// | "only decomposition"        | `false`     | `true`          |
/// | "Complete"                  | `true`      | `true`          |
#[derive(Debug, Clone, PartialEq)]
pub struct ExplorerConfig {
    /// Generalize each infeasibility certificate to every isomorphic
    /// embedding (Algorithm 2). When off, only the violating candidate
    /// sub-architecture itself is excluded per iteration.
    pub iso_pruning: bool,
    /// Check path-specific viewpoints per source→sink path (Algorithm 1).
    pub compositional: bool,
    /// Widen certificate cuts to the dominated implementation set `ℒ_g⁺`
    /// (the `ImplementationSearch` step of Algorithm 2). Disabling this is
    /// an extra ablation beyond the paper's two, useful for quantifying how
    /// much of the pruning power comes from dominance versus isomorphism.
    pub dominance_widening: bool,
    /// Iteration cap for the lazy loop.
    pub max_iterations: usize,
    /// Optional wall-clock budget for the whole exploration.
    pub time_limit_secs: Option<f64>,
    /// MILP solver options (shared by candidate selection and refinement
    /// queries).
    pub solve_options: SolveOptions,
    /// Cap on path enumeration during compositional checking.
    pub max_paths: usize,
}

impl Default for ExplorerConfig {
    fn default() -> Self {
        ExplorerConfig {
            iso_pruning: true,
            compositional: true,
            dominance_widening: true,
            max_iterations: 10_000,
            time_limit_secs: None,
            solve_options: SolveOptions::default(),
            max_paths: 100_000,
        }
    }
}

impl ExplorerConfig {
    /// The paper's "Complete" mode (both techniques on) — the default.
    #[must_use]
    pub fn complete() -> Self {
        Self::default()
    }

    /// The paper's "only subgraph isomorphism" ablation.
    #[must_use]
    pub fn only_iso() -> Self {
        ExplorerConfig { compositional: false, ..Self::default() }
    }

    /// The paper's "only decomposition" ablation.
    #[must_use]
    pub fn only_decomposition() -> Self {
        ExplorerConfig { iso_pruning: false, ..Self::default() }
    }
}

/// Statistics of one exploration run (the measurements behind Fig. 5 and
/// Table II of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ExplorationStats {
    /// Lazy-loop iterations (MILP solve + refinement check rounds).
    pub iterations: usize,
    /// Certificate cuts added across all iterations.
    pub cuts_added: usize,
    /// Variables in the initial Problem-2 MILP.
    pub milp_vars: usize,
    /// Constraints in the initial Problem-2 MILP.
    pub milp_constraints: usize,
    /// Seconds spent in candidate-selection MILP solves.
    pub milp_time: f64,
    /// Seconds spent in refinement checking.
    pub refine_time: f64,
    /// Seconds spent generating certificates.
    pub cert_time: f64,
    /// Total wall-clock seconds.
    pub total_time: f64,
}

impl fmt::Display for ExplorationStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} iterations, {} cuts, {:.3} s total ({:.3} milp / {:.3} refine / {:.3} cert)",
            self.iterations,
            self.cuts_added,
            self.total_time,
            self.milp_time,
            self.refine_time,
            self.cert_time
        )
    }
}

/// Result of an exploration.
#[derive(Debug, Clone, PartialEq)]
pub enum Exploration {
    /// The optimal architecture satisfying all system-level contracts.
    Optimal {
        /// The selected architecture `ℳ`.
        architecture: Architecture,
        /// Run statistics.
        stats: ExplorationStats,
    },
    /// No architecture satisfies the requirements.
    Infeasible {
        /// Run statistics.
        stats: ExplorationStats,
    },
}

impl Exploration {
    /// Run statistics regardless of outcome.
    #[must_use]
    pub fn stats(&self) -> &ExplorationStats {
        match self {
            Exploration::Optimal { stats, .. } | Exploration::Infeasible { stats } => stats,
        }
    }

    /// The optimal architecture, if one was found.
    #[must_use]
    pub fn architecture(&self) -> Option<&Architecture> {
        match self {
            Exploration::Optimal { architecture, .. } => Some(architecture),
            Exploration::Infeasible { .. } => None,
        }
    }
}

/// Errors of the exploration loop.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ExploreError {
    /// An underlying MILP/encoding failure.
    Solve(SolveError),
    /// The iteration cap was reached before convergence.
    IterationLimit {
        /// The configured cap.
        limit: usize,
    },
    /// The exploration's wall-clock budget was exhausted.
    TimeLimit {
        /// The configured budget in seconds.
        limit_secs: f64,
    },
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::Solve(e) => write!(f, "exploration failed: {e}"),
            ExploreError::IterationLimit { limit } => {
                write!(f, "exploration iteration limit of {limit} exceeded")
            }
            ExploreError::TimeLimit { limit_secs } => {
                write!(f, "exploration time budget of {limit_secs} s exhausted")
            }
        }
    }
}

impl Error for ExploreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExploreError::Solve(e) => Some(e),
            ExploreError::IterationLimit { .. } | ExploreError::TimeLimit { .. } => None,
        }
    }
}

impl From<SolveError> for ExploreError {
    fn from(e: SolveError) -> Self {
        ExploreError::Solve(e)
    }
}

/// Run the ContrArc exploration: select candidates with the Problem-2 MILP,
/// verify system contracts by refinement, prune with isomorphism
/// certificates, and repeat until the candidate verifies (then it is the
/// global optimum, since cuts only ever remove architectures that violate
/// system-level contracts).
///
/// For step-by-step control (inspecting each candidate and its violations),
/// use [`Explorer`] directly.
///
/// # Errors
///
/// Returns [`ExploreError`] on malformed problems, solver resource limits,
/// or when `config.max_iterations` is exhausted.
pub fn explore(problem: &Problem, config: &ExplorerConfig) -> Result<Exploration, ExploreError> {
    Explorer::new(problem, config.clone())?.run()
}

/// What one exploration iteration produced.
#[derive(Debug, Clone, PartialEq)]
pub enum Step {
    /// A candidate was selected but violated system contracts; cuts were
    /// added and the loop should continue.
    Pruned {
        /// The rejected candidate.
        candidate: Architecture,
        /// The violations found (every violated path/viewpoint).
        violations: Vec<crate::refinement::Violation>,
        /// Certificate cuts added to the MILP.
        cuts_added: usize,
    },
    /// The candidate satisfied every system contract: exploration is done
    /// and this is the global optimum.
    Optimal(Architecture),
    /// The (cut-augmented) MILP is infeasible: no architecture satisfies the
    /// requirements.
    Infeasible,
}

/// The exploration loop as a resumable state machine.
///
/// Each [`Explorer::step`] runs one iteration of Problems 2 → 3 → 4 and
/// reports what happened, which is the right granularity for debugging
/// libraries, visualizing the search, or interleaving exploration with other
/// work. [`Explorer::run`] drives it to completion (what [`explore`] does).
///
/// ```rust,no_run
/// # use contrarc::{Explorer, ExplorerConfig, Problem, Step};
/// # fn demo(problem: &Problem) -> Result<(), contrarc::ExploreError> {
/// let mut explorer = Explorer::new(problem, ExplorerConfig::complete())?;
/// loop {
///     match explorer.step()? {
///         Step::Pruned { candidate, violations, .. } => {
///             eprintln!("rejected cost {}: {} violations", candidate.cost(), violations.len());
///         }
///         Step::Optimal(arch) => { eprintln!("optimum: {}", arch.cost()); break; }
///         Step::Infeasible => { eprintln!("infeasible"); break; }
///     }
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Explorer<'p> {
    problem: &'p Problem,
    config: ExplorerConfig,
    enc: crate::encode::Encoding,
    checker: RefinementChecker,
    ref_config: RefinementConfig,
    stats: ExplorationStats,
    cut_seq: u32,
    cost_floor: Option<f64>,
    start: Instant,
    finished: bool,
}

impl<'p> Explorer<'p> {
    /// Encode the problem and prepare the loop.
    ///
    /// # Errors
    ///
    /// Returns [`ExploreError::Solve`] when the problem fails validation.
    pub fn new(problem: &'p Problem, config: ExplorerConfig) -> Result<Self, ExploreError> {
        let enc = encode_problem2(problem)?;
        let model_stats = enc.model.stats();
        let stats = ExplorationStats {
            milp_vars: model_stats.num_vars,
            milp_constraints: model_stats.num_constraints,
            ..ExplorationStats::default()
        };
        let checker = RefinementChecker::with_options(
            config.solve_options.clone(),
            EncodeOptions::default(),
        );
        let ref_config = RefinementConfig {
            compositional: config.compositional,
            max_paths: config.max_paths,
        };
        Ok(Explorer {
            problem,
            config,
            enc,
            checker,
            ref_config,
            stats,
            cut_seq: 0,
            cost_floor: None,
            start: Instant::now(),
            finished: false,
        })
    }

    /// Statistics accumulated so far.
    #[must_use]
    pub fn stats(&self) -> &ExplorationStats {
        &self.stats
    }

    /// Run one iteration of the loop.
    ///
    /// # Errors
    ///
    /// Returns [`ExploreError`] on solver failures or exhausted
    /// iteration/time budgets.
    ///
    /// # Panics
    ///
    /// Panics when called again after a terminal step ([`Step::Optimal`] or
    /// [`Step::Infeasible`]).
    pub fn step(&mut self) -> Result<Step, ExploreError> {
        assert!(!self.finished, "exploration already finished");
        if self.stats.iterations >= self.config.max_iterations {
            return Err(ExploreError::IterationLimit { limit: self.config.max_iterations });
        }
        if let Some(limit) = self.config.time_limit_secs {
            if self.start.elapsed().as_secs_f64() > limit {
                return Err(ExploreError::TimeLimit { limit_secs: limit });
            }
        }
        self.stats.iterations += 1;

        // Problem 2: candidate selection. The optimum is nondecreasing
        // across iterations (cuts only remove solutions), so the previous
        // cost is a proven objective floor that lets branch-and-bound stop
        // at the first matching incumbent.
        let t0 = Instant::now();
        let mut solve_options = self.config.solve_options.clone();
        solve_options.objective_floor = self.cost_floor;
        let outcome = self.enc.model.solve(&solve_options)?;
        self.stats.milp_time += t0.elapsed().as_secs_f64();

        let Some(solution) = outcome.solution() else {
            self.stats.total_time = self.start.elapsed().as_secs_f64();
            self.finished = true;
            return Ok(Step::Infeasible);
        };
        self.cost_floor = Some(solution.objective());
        let arch = Architecture::decode(self.problem, &self.enc, solution);

        // Problem 3: refinement verification.
        let t1 = Instant::now();
        let violations =
            check_candidate_all(self.problem, &arch, &self.ref_config, &self.checker)?;
        self.stats.refine_time += t1.elapsed().as_secs_f64();

        if violations.is_empty() {
            self.stats.total_time = self.start.elapsed().as_secs_f64();
            self.finished = true;
            return Ok(Step::Optimal(arch));
        }

        // Problem 4: certificate generation.
        let t2 = Instant::now();
        let cut_config = CutConfig {
            iso_pruning: self.config.iso_pruning,
            dominance_widening: self.config.dominance_widening,
        };
        let mut added = 0;
        for v in &violations {
            added +=
                apply_cuts(self.problem, &mut self.enc, &arch, v, &cut_config, &mut self.cut_seq)?;
        }
        self.stats.cert_time += t2.elapsed().as_secs_f64();
        self.stats.cuts_added += added;
        debug_assert!(added > 0, "certificate generation must make progress");
        Ok(Step::Pruned { candidate: arch, violations, cuts_added: added })
    }

    /// Drive the loop to completion.
    ///
    /// # Errors
    ///
    /// Returns [`ExploreError`] on solver failures or exhausted budgets.
    pub fn run(mut self) -> Result<Exploration, ExploreError> {
        loop {
            match self.step()? {
                Step::Pruned { .. } => {}
                Step::Optimal(architecture) => {
                    return Ok(Exploration::Optimal { architecture, stats: self.stats });
                }
                Step::Infeasible => {
                    return Ok(Exploration::Infeasible { stats: self.stats });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::{Attrs, COST, FLOW_CONS, FLOW_GEN, LATENCY, THROUGHPUT};
    use crate::problem::{FlowSpec, SystemSpec, TimingSpec};
    use crate::template::{Template, TypeConfig};
    use crate::Library;

    /// Two parallel lines; cheap machines are too slow for the latency
    /// budget, forcing at least one pruning iteration.
    fn lines_problem(max_latency: f64) -> Problem {
        let mut t = Template::new("two");
        let src_t = t.add_type("src", TypeConfig::source());
        let mach_t = t.add_type("mach", TypeConfig::bounded(2, 2));
        let sink_t = t.add_type("sink", TypeConfig::sink());
        for side in ["A", "B"] {
            let s = t.add_node(format!("S{side}"), src_t);
            let m = t.add_node(format!("M{side}"), mach_t);
            let k = t.add_required_node(format!("K{side}"), sink_t);
            t.add_candidate_edge(s, m);
            t.add_candidate_edge(m, k);
        }
        let mut lib = Library::new();
        lib.add("S", src_t, Attrs::new().with(COST, 1.0).with(FLOW_GEN, 10.0).with(LATENCY, 1.0));
        lib.add(
            "M_slow",
            mach_t,
            Attrs::new().with(COST, 1.0).with(THROUGHPUT, 20.0).with(LATENCY, 30.0),
        );
        lib.add(
            "M_mid",
            mach_t,
            Attrs::new().with(COST, 3.0).with(THROUGHPUT, 20.0).with(LATENCY, 12.0),
        );
        lib.add(
            "M_fast",
            mach_t,
            Attrs::new().with(COST, 6.0).with(THROUGHPUT, 20.0).with(LATENCY, 2.0),
        );
        lib.add("K", sink_t, Attrs::new().with(COST, 1.0).with(FLOW_CONS, 5.0).with(LATENCY, 1.0));
        let spec = SystemSpec {
            flow: Some(FlowSpec { max_supply: 100.0, max_consumption: 100.0 }),
            timing: Some(TimingSpec {
                max_latency,
                max_input_jitter: 1.0,
                max_output_jitter: 1.0,
            }),
            flow_cap: 100.0,
            horizon: 1000.0,
        };
        Problem::new(t, lib, spec)
    }

    #[test]
    fn converges_to_feasible_optimum() {
        // Budget 15 admits M_mid (1+12+1 = 14) but not M_slow (32).
        let p = lines_problem(15.0);
        let result = explore(&p, &ExplorerConfig::complete()).unwrap();
        let arch = result.architecture().expect("optimal expected");
        // Expected: S + M_mid + K per line = (1+3+1)*2 = 10.
        assert!((arch.cost() - 10.0).abs() < 1e-6, "cost {}", arch.cost());
        assert!(result.stats().iterations >= 2, "must iterate past the slow candidate");
    }

    #[test]
    fn no_iterations_needed_when_first_candidate_valid() {
        let p = lines_problem(50.0);
        let result = explore(&p, &ExplorerConfig::complete()).unwrap();
        assert_eq!(result.stats().iterations, 1);
        assert_eq!(result.stats().cuts_added, 0);
        // Cheapest machines fine: (1+1+1)*2 = 6.
        assert!((result.architecture().unwrap().cost() - 6.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_when_no_impl_fast_enough() {
        // Even M_fast (1+2+1 = 4) cannot meet a bound of 3.
        let p = lines_problem(3.0);
        let result = explore(&p, &ExplorerConfig::complete()).unwrap();
        assert!(matches!(result, Exploration::Infeasible { .. }));
    }

    #[test]
    fn all_three_modes_agree_on_cost() {
        let p = lines_problem(15.0);
        let complete = explore(&p, &ExplorerConfig::complete()).unwrap();
        let only_iso = explore(&p, &ExplorerConfig::only_iso()).unwrap();
        let only_dec = explore(&p, &ExplorerConfig::only_decomposition()).unwrap();
        let c = complete.architecture().unwrap().cost();
        assert!((only_iso.architecture().unwrap().cost() - c).abs() < 1e-6);
        assert!((only_dec.architecture().unwrap().cost() - c).abs() < 1e-6);
    }

    #[test]
    fn iso_pruning_reduces_iterations() {
        let p = lines_problem(15.0);
        let complete = explore(&p, &ExplorerConfig::complete()).unwrap();
        let only_dec = explore(&p, &ExplorerConfig::only_decomposition()).unwrap();
        assert!(
            complete.stats().iterations <= only_dec.stats().iterations,
            "iso pruning must not need more iterations ({} vs {})",
            complete.stats().iterations,
            only_dec.stats().iterations
        );
    }

    #[test]
    fn iteration_limit_reported() {
        let p = lines_problem(15.0);
        let config = ExplorerConfig { max_iterations: 1, ..ExplorerConfig::complete() };
        let err = explore(&p, &config).unwrap_err();
        assert!(matches!(err, ExploreError::IterationLimit { limit: 1 }));
        assert!(err.to_string().contains("limit"));
    }

    #[test]
    fn stepwise_explorer_matches_batch() {
        let p = lines_problem(15.0);
        let batch = explore(&p, &ExplorerConfig::complete()).unwrap();
        let mut explorer = Explorer::new(&p, ExplorerConfig::complete()).unwrap();
        let mut pruned_steps = 0;
        let optimum = loop {
            match explorer.step().unwrap() {
                Step::Pruned { violations, cuts_added, .. } => {
                    assert!(!violations.is_empty());
                    assert!(cuts_added > 0);
                    pruned_steps += 1;
                }
                Step::Optimal(arch) => break arch,
                Step::Infeasible => panic!("expected feasible"),
            }
        };
        assert!((optimum.cost() - batch.architecture().unwrap().cost()).abs() < 1e-6);
        assert_eq!(pruned_steps + 1, batch.stats().iterations);
    }

    #[test]
    #[should_panic(expected = "already finished")]
    fn step_after_finish_panics() {
        let p = lines_problem(50.0);
        let mut explorer = Explorer::new(&p, ExplorerConfig::complete()).unwrap();
        loop {
            match explorer.step().unwrap() {
                Step::Pruned { .. } => {}
                _ => break,
            }
        }
        let _ = explorer.step();
    }

    #[test]
    fn stats_display() {
        let p = lines_problem(50.0);
        let result = explore(&p, &ExplorerConfig::complete()).unwrap();
        let text = result.stats().to_string();
        assert!(text.contains("iterations"));
        assert!(result.stats().milp_vars > 0);
        assert!(result.stats().milp_constraints > 0);
    }
}
