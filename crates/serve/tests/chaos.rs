//! Deterministic chaos tests: with seeded worker panics, torn checkpoint
//! writes, and injected solver faults, every job still completes with a
//! final incumbent cost and lower bound **bit-identical** to the fault-free
//! run — the headline recovery guarantee of the job server.
//!
//! Compiled only with `--features fault-injection`. The CI fault-injection
//! matrix runs this suite once per seed (`CONTRARC_CHAOS_SEED`) and uploads
//! the per-job JSONL traces (`CONTRARC_CHAOS_TRACE_DIR`) when a run fails.
#![cfg(feature = "fault-injection")]

use contrarc::{explore, Exploration, ExplorerConfig};
use contrarc_milp::{FaultKind, FaultPlan};
use contrarc_serve::{ChaosConfig, JobServer, JobSpec, JobStatus, ServerConfig};
use contrarc_systems::rpl::{build as build_rpl, RplConfig, RplLines};
use std::path::PathBuf;

fn rpl_problem(max_latency: f64, lines: RplLines) -> contrarc::Problem {
    build_rpl(
        &RplConfig {
            max_latency,
            ..RplConfig::default()
        },
        lines,
    )
}

/// The multi-tenant workload every chaos run explores: three jobs with
/// different templates and latency budgets, each needing several pruning
/// iterations (so injected panics strike mid-search, not post-optimum).
fn workload() -> Vec<contrarc::Problem> {
    vec![
        rpl_problem(42.0, RplLines::LineA),
        rpl_problem(42.0, RplLines::LineB),
        rpl_problem(36.0, RplLines::LineA),
    ]
}

fn trace_dir(label: &str) -> Option<PathBuf> {
    let base = std::env::var_os("CONTRARC_CHAOS_TRACE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("contrarc-chaos-traces"));
    Some(base.join(format!("{label}-pid{}", std::process::id())))
}

/// Seeds to exercise: `CONTRARC_CHAOS_SEED` selects one (the CI matrix sets
/// it per job); unset, the test covers two seeds itself.
fn seeds() -> Vec<u64> {
    match std::env::var("CONTRARC_CHAOS_SEED") {
        Ok(s) => vec![s.parse().expect("CONTRARC_CHAOS_SEED must be a u64")],
        Err(_) => vec![1, 2],
    }
}

#[test]
fn chaos_runs_are_bit_identical_to_fault_free_runs() {
    let problems = workload();
    let baseline: Vec<Exploration> = problems
        .iter()
        .map(|p| explore(p, &ExplorerConfig::complete()).unwrap())
        .collect();

    for seed in seeds() {
        let server = JobServer::new(ServerConfig {
            workers: 2,
            max_attempts: 3,
            backoff_base_ms: 1,
            checkpoint_every: 1,
            trace_dir: trace_dir(&format!("bit-identical-seed{seed}")),
            chaos: Some(ChaosConfig::new(seed)),
            ..ServerConfig::default()
        });
        let ids: Vec<_> = problems
            .iter()
            .enumerate()
            .map(|(i, p)| {
                server
                    .submit(JobSpec::new(format!("tenant-{i}"), p.clone()))
                    .expect("admission")
            })
            .collect();
        let statuses = server.drain();

        for (slot, (id, reference)) in ids.iter().zip(&baseline).enumerate() {
            let (_, status) = statuses.iter().find(|(j, _)| j == id).expect("drained");
            let JobStatus::Done { result, recoveries } = status else {
                panic!("seed {seed} job {slot}: expected Done, got {status:?}");
            };
            assert!(
                *recoveries >= 1,
                "seed {seed} job {slot}: chaos panics every job at least once, \
                 so every job must have recovered"
            );
            assert_eq!(
                result.incumbent().unwrap().cost().to_bits(),
                reference.incumbent().unwrap().cost().to_bits(),
                "seed {seed} job {slot}: incumbent cost must be bit-identical"
            );
            assert_eq!(
                result.lower_bound().unwrap().to_bits(),
                reference.lower_bound().unwrap().to_bits(),
                "seed {seed} job {slot}: lower bound must be bit-identical"
            );
            assert_eq!(result.stats().iterations, reference.stats().iterations);
            assert_eq!(result.stats().cuts_added, reference.stats().cuts_added);
        }
    }
}

#[test]
fn solver_fault_retries_then_matches_fault_free_result() {
    let problem = rpl_problem(42.0, RplLines::LineA);
    let reference = explore(&problem, &ExplorerConfig::complete()).unwrap();

    // Numerical breakdowns on the first four solver calls: enough to
    // exhaust the MILP layer's own three-rung retry ladder, so the error
    // surfaces and kills the first attempt. The server's retry (sharing the
    // fault plan's call counter) runs past the injection window and must
    // converge to the same optimum.
    let mut plan = FaultPlan::new();
    for call in 1..=4 {
        plan = plan.inject_at(call, FaultKind::Numerical);
    }
    let mut config = ExplorerConfig::complete();
    config.solve_options.fault_plan = Some(plan);

    let server = JobServer::new(ServerConfig {
        workers: 1,
        max_attempts: 3,
        backoff_base_ms: 1,
        trace_dir: trace_dir("solver-fault"),
        ..ServerConfig::default()
    });
    let id = server
        .submit(JobSpec::new("flaky-solver", problem.clone()).with_config(config))
        .unwrap();
    let status = server.wait(id).unwrap();
    let JobStatus::Done { result, recoveries } = status else {
        panic!("expected Done, got {status:?}");
    };
    assert!(recoveries >= 1, "the failed first attempt must be retried");
    assert_eq!(
        result.incumbent().unwrap().cost().to_bits(),
        reference.incumbent().unwrap().cost().to_bits()
    );
}

#[test]
fn persistent_failures_quarantine_the_job_and_spare_the_pool() {
    let problem = rpl_problem(42.0, RplLines::LineA);

    // Fault every one of the first 64 solver calls: all three attempts fail
    // and the job must be quarantined as poison instead of crash-looping.
    let mut plan = FaultPlan::new();
    for call in 1..=64 {
        plan = plan.inject_at(call, FaultKind::Numerical);
    }
    let mut config = ExplorerConfig::complete();
    config.solve_options.fault_plan = Some(plan);

    let server = JobServer::new(ServerConfig {
        workers: 1,
        max_attempts: 3,
        backoff_base_ms: 1,
        trace_dir: trace_dir("quarantine"),
        ..ServerConfig::default()
    });
    let poison = server
        .submit(JobSpec::new("poison", problem.clone()).with_config(config))
        .unwrap();
    let status = server.wait(poison).unwrap();
    let JobStatus::Quarantined {
        attempts,
        last_error,
    } = status
    else {
        panic!("expected Quarantined, got {status:?}");
    };
    assert_eq!(attempts, 3);
    assert!(
        last_error.contains("numerical"),
        "quarantine records the failure: {last_error}"
    );

    // The pool survived the poison job: a clean submission still completes.
    let clean = server
        .submit(JobSpec::new("clean", problem.clone()))
        .unwrap();
    let reference = explore(&problem, &ExplorerConfig::complete()).unwrap();
    let status = server.wait(clean).unwrap();
    let JobStatus::Done { result, .. } = status else {
        panic!("expected Done, got {status:?}");
    };
    assert_eq!(
        result.incumbent().unwrap().cost().to_bits(),
        reference.incumbent().unwrap().cost().to_bits()
    );
}
