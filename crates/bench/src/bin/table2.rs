//! Regenerates **Table II** of the paper: EPN exploration across template
//! configurations `(L, R, APU)` under the three ablation modes ("only
//! subgraph isomorphism", "only decomposition", "Complete").
//!
//! Usage: `cargo run --release -p contrarc-bench --bin table2 [max_rows]`
//!    or: `cargo run --release -p contrarc-bench --bin table2 [from] [to]`
//!
//! The default runs the first 5 (smallest) configurations; `table2 10` runs
//! the paper's full list, and `table2 5 8` runs rows 5..8 (useful for
//! chunked runs — the large two-sided templates take a while with the
//! bundled solver). `CONTRARC_TIME_LIMIT` (seconds) caps each method per
//! row; timed-out cells report the budget with no cost.

use contrarc_bench::harness::{render_table2, run_table2_row, table2_configs, time_limit_secs};
use contrarc_obs::event;

fn main() {
    contrarc_bench::init_bin_tracing();
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .map(|s| s.parse().expect("row arguments must be numbers"))
        .collect();
    let (from, to) = match args.as_slice() {
        [] => (0, 5),
        [n] => (0, *n),
        [a, b] => (*a, *b),
        _ => panic!("usage: table2 [max_rows] | table2 [from] [to]"),
    };
    println!("=== Table II: EPN synthesis — ablation of the two techniques ===");
    println!("(per-method budget: {} s)\n", time_limit_secs());
    let configs = table2_configs();
    let mut rows = Vec::new();
    for config in configs.iter().take(to).skip(from) {
        event!("table2.row", config = config.label());
        rows.push(run_table2_row(config));
    }
    println!("{}", render_table2(&rows));
    println!("expected shape: 'complete' dominates both ablations in time;");
    println!("iso-pruning needs far fewer iterations than decomposition-only.");
    contrarc_obs::flush_sink();
}
