//! Decision variables: identifiers, kinds, and definitions.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Opaque handle to a decision variable inside a [`Model`](crate::Model).
///
/// `VarId`s are only meaningful for the model that created them. They are
/// cheap to copy and implement ordering so they can key maps.
///
/// ```rust
/// use contrarc_milp::Model;
/// let mut m = Model::new("ex");
/// let x = m.add_continuous("x", 0.0, 1.0);
/// assert_eq!(m.var_name(x), "x");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VarId(pub(crate) u32);

impl VarId {
    /// Index of the variable within its model (dense, starting at zero).
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuild a `VarId` from a dense index previously obtained via
    /// [`VarId::index`]. Only valid for the originating model.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        VarId(u32::try_from(index).expect("variable index overflow"))
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// The kind of a decision variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VarType {
    /// Real-valued variable.
    Continuous,
    /// Integer-valued variable.
    Integer,
    /// Binary (0/1) variable; shorthand for an integer with bounds `[0, 1]`.
    Binary,
}

impl VarType {
    /// Whether this variable must take integral values in a feasible solution.
    #[must_use]
    pub fn is_integral(self) -> bool {
        matches!(self, VarType::Integer | VarType::Binary)
    }
}

impl fmt::Display for VarType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VarType::Continuous => f.write_str("continuous"),
            VarType::Integer => f.write_str("integer"),
            VarType::Binary => f.write_str("binary"),
        }
    }
}

/// Full definition of a variable stored by the model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VarDef {
    /// Human-readable name (used in diagnostics and reports).
    pub name: String,
    /// Variable kind.
    pub ty: VarType,
    /// Lower bound (may be `f64::NEG_INFINITY`).
    pub lb: f64,
    /// Upper bound (may be `f64::INFINITY`).
    pub ub: f64,
}

impl VarDef {
    /// Create a definition, validating that `lb <= ub` and bounds are not NaN.
    ///
    /// # Panics
    ///
    /// Panics if a bound is NaN or `lb > ub`; malformed bounds are a
    /// programming error at model-construction time.
    #[must_use]
    pub fn new(name: impl Into<String>, ty: VarType, lb: f64, ub: f64) -> Self {
        assert!(
            !lb.is_nan() && !ub.is_nan(),
            "variable bounds must not be NaN"
        );
        assert!(
            lb <= ub,
            "variable lower bound {lb} exceeds upper bound {ub}"
        );
        let (lb, ub) = match ty {
            VarType::Binary => (lb.max(0.0), ub.min(1.0)),
            _ => (lb, ub),
        };
        VarDef {
            name: name.into(),
            ty,
            lb,
            ub,
        }
    }

    /// Whether the bounds pin the variable to a single value.
    #[must_use]
    pub fn is_fixed(&self) -> bool {
        self.lb == self.ub
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_id_roundtrip() {
        let v = VarId::from_index(17);
        assert_eq!(v.index(), 17);
        assert_eq!(v.to_string(), "x17");
    }

    #[test]
    fn var_type_integrality() {
        assert!(!VarType::Continuous.is_integral());
        assert!(VarType::Integer.is_integral());
        assert!(VarType::Binary.is_integral());
    }

    #[test]
    fn binary_bounds_clamped() {
        let d = VarDef::new("b", VarType::Binary, -3.0, 9.0);
        assert_eq!((d.lb, d.ub), (0.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "exceeds upper bound")]
    fn inverted_bounds_panic() {
        let _ = VarDef::new("x", VarType::Continuous, 2.0, 1.0);
    }

    #[test]
    fn fixed_detection() {
        assert!(VarDef::new("x", VarType::Continuous, 2.0, 2.0).is_fixed());
        assert!(!VarDef::new("x", VarType::Continuous, 2.0, 3.0).is_fixed());
    }
}
