//! Quickstart: define a three-stage system template, give each stage a few
//! implementation choices, and let ContrArc pick the cheapest architecture
//! that meets an end-to-end latency budget.
//!
//! Run with: `cargo run --example quickstart`

use contrarc::attr::{Attrs, COST, FLOW_CONS, FLOW_GEN, LATENCY, THROUGHPUT};
use contrarc::{
    explore, ExplorerConfig, FlowSpec, Library, Problem, SystemSpec, Template, TimingSpec,
    TypeConfig,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The template: a camera feeding one of two candidate processing
    //    units, feeding an actuator.
    let mut template = Template::new("vision-pipeline");
    let cam_t = template.add_type("camera", TypeConfig::source());
    let proc_t = template.add_type("processor", TypeConfig::bounded(2, 2));
    let act_t = template.add_type("actuator", TypeConfig::sink());

    let cam = template.add_node("cam", cam_t);
    let proc_a = template.add_node("proc0", proc_t);
    let proc_b = template.add_node("proc1", proc_t);
    let act = template.add_required_node("act", act_t);
    template.add_candidate_edge(cam, proc_a);
    template.add_candidate_edge(cam, proc_b);
    template.add_candidate_edge(proc_a, act);
    template.add_candidate_edge(proc_b, act);

    // 2. The implementation library: cheaper parts are slower.
    let mut library = Library::new();
    library.add(
        "cam-30fps",
        cam_t,
        Attrs::new()
            .with(COST, 2.0)
            .with(FLOW_GEN, 30.0)
            .with(LATENCY, 3.0),
    );
    library.add(
        "mcu",
        proc_t,
        Attrs::new()
            .with(COST, 3.0)
            .with(THROUGHPUT, 30.0)
            .with(LATENCY, 25.0),
    );
    library.add(
        "dsp",
        proc_t,
        Attrs::new()
            .with(COST, 8.0)
            .with(THROUGHPUT, 60.0)
            .with(LATENCY, 8.0),
    );
    library.add(
        "fpga",
        proc_t,
        Attrs::new()
            .with(COST, 20.0)
            .with(THROUGHPUT, 120.0)
            .with(LATENCY, 2.0),
    );
    library.add(
        "servo",
        act_t,
        Attrs::new()
            .with(COST, 4.0)
            .with(FLOW_CONS, 24.0)
            .with(LATENCY, 4.0),
    );

    // 3. System-level contracts: 20 time-units budget, camera→actuator.
    let spec = SystemSpec {
        flow: Some(FlowSpec {
            max_supply: 100.0,
            max_consumption: 100.0,
        }),
        timing: Some(TimingSpec {
            max_latency: 20.0,
            max_input_jitter: 1.0,
            max_output_jitter: 1.0,
        }),
        flow_cap: 200.0,
        horizon: 1000.0,
    };

    // 4. Explore.
    let problem = Problem::new(template, library, spec);
    let result = explore(&problem, &ExplorerConfig::complete())?;
    match result.architecture() {
        Some(arch) => {
            println!("{}", arch.describe(&problem));
            println!("stats: {}", result.stats());
            // The MCU (latency 25) blows the 20-unit budget; the DSP wins.
        }
        None => println!("no feasible architecture"),
    }
    Ok(())
}
