//! Aggregate server metrics. Kept in its own integration-test binary: the
//! metrics registry is process-global, and sharing a process with other
//! server tests would mix their counters into the snapshot.

use contrarc_obs::metrics::with_metrics;
use contrarc_serve::{JobServer, JobSpec, ServerConfig};
use contrarc_systems::rpl::{build as build_rpl, RplConfig, RplLines};

#[test]
fn server_publishes_queue_retry_and_checkpoint_metrics() {
    let problem = build_rpl(
        &RplConfig {
            max_latency: 42.0,
            ..RplConfig::default()
        },
        RplLines::LineA,
    );
    let ((), report) = with_metrics(|| {
        let server = JobServer::new(ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        });
        let a = server.submit(JobSpec::new("a", problem.clone())).unwrap();
        let b = server.submit(JobSpec::new("b", problem.clone())).unwrap();
        assert!(server.wait(a).unwrap().is_terminal());
        assert!(server.wait(b).unwrap().is_terminal());
        server.take(a);
        server.drain();
    });
    assert_eq!(report.counter("serve.jobs.submitted"), Some(2));
    assert_eq!(report.counter("serve.jobs.completed"), Some(2));
    assert_eq!(report.counter("serve.jobs.evicted"), Some(1));
    assert!(
        report.counter("serve.checkpoints.written").unwrap_or(0) > 0,
        "periodic checkpointing must record writes"
    );
    let depth = report.gauge("serve.queue.depth").expect("gauge published");
    assert_eq!(depth.value, 0, "queue empties by the end");
    assert!(depth.max >= 1, "two jobs on one worker must have queued");
}
