//! Fault-injection resilience tests, run over **both** LP backends: the
//! retry ladder (Bland's rule → tightened tolerances + per-pivot
//! refactorization → presolve off) must absorb recoverable faults and
//! surface unrecoverable ones identically whichever engine solves the
//! relaxations.
#![cfg(feature = "fault-injection")]

use contrarc_milp::{
    Cmp, FaultKind, FaultPlan, LinExpr, LpBackend, Model, Sense, SolveError, SolveOptions, Solver,
};

const BACKENDS: [LpBackend; 2] = [LpBackend::Revised, LpBackend::DenseTableau];

/// A small knapsack that needs branching, so every ladder rung does real work.
fn knapsack() -> Model {
    let mut m = Model::new("faulty");
    let weights = [3.0, 4.0, 5.0, 6.0, 7.0];
    let values = [4.0, 5.0, 6.0, 7.5, 8.0];
    let vars: Vec<_> = (0..5).map(|i| m.add_binary(format!("x{i}"))).collect();
    let w: LinExpr = vars
        .iter()
        .zip(weights)
        .map(|(&v, wi)| LinExpr::term(v, wi))
        .sum();
    let val: LinExpr = vars
        .iter()
        .zip(values)
        .map(|(&v, vi)| LinExpr::term(v, vi))
        .sum();
    m.add_constr("cap", w, Cmp::Le, 12.0).unwrap();
    m.set_objective(Sense::Maximize, val);
    m
}

fn opts(backend: LpBackend, plan: FaultPlan) -> SolveOptions {
    SolveOptions {
        backend,
        fault_plan: Some(plan),
        ..SolveOptions::default()
    }
}

#[test]
fn numerical_fault_is_absorbed_by_retry_ladder() {
    let m = knapsack();
    for backend in BACKENDS {
        let plan = FaultPlan::new().inject_at(1, FaultKind::Numerical);
        let out = Solver::new(opts(backend, plan)).solve(&m).unwrap();
        assert_eq!(
            out.stats().numerical_retries,
            1,
            "{backend:?}: expected exactly one ladder rung"
        );
        let sol = out.expect_optimal().unwrap();
        assert!(
            (sol.objective() - 15.0).abs() < 1e-6,
            "{backend:?}: got {}",
            sol.objective()
        );
    }
}

#[test]
fn repeated_numerical_faults_climb_every_rung_then_succeed() {
    let m = knapsack();
    for backend in BACKENDS {
        // Three consecutive faults exercise all three rungs (Bland, tighter
        // tolerances + refactor-every-pivot, presolve off); the 4th call
        // succeeds with the most conservative settings.
        let plan = FaultPlan::new()
            .inject_at(1, FaultKind::Numerical)
            .inject_at(2, FaultKind::Numerical)
            .inject_at(3, FaultKind::Numerical);
        let out = Solver::new(opts(backend, plan)).solve(&m).unwrap();
        assert_eq!(out.stats().numerical_retries, 3, "{backend:?}");
        let sol = out.expect_optimal().unwrap();
        assert!((sol.objective() - 15.0).abs() < 1e-6, "{backend:?}");
    }
}

#[test]
fn exhausted_ladder_surfaces_the_numerical_error() {
    let m = knapsack();
    for backend in BACKENDS {
        let mut plan = FaultPlan::new();
        for call in 1..=4 {
            plan = plan.inject_at(call, FaultKind::Numerical);
        }
        match Solver::new(opts(backend, plan)).solve(&m) {
            Err(SolveError::Numerical(_)) => {}
            other => panic!("{backend:?}: expected numerical error, got {other:?}"),
        }
    }
}

#[test]
fn limit_faults_are_not_retried() {
    let m = knapsack();
    for backend in BACKENDS {
        let plan = FaultPlan::new().inject_at(1, FaultKind::PivotLimit);
        match Solver::new(opts(backend, plan)).solve(&m) {
            Err(SolveError::IterationLimit { .. }) => {}
            other => panic!("{backend:?}: expected iteration limit, got {other:?}"),
        }
        let plan = FaultPlan::new().inject_at(1, FaultKind::DeadlineExpired);
        match Solver::new(opts(backend, plan)).solve(&m) {
            Err(SolveError::TimeLimit { .. }) => {}
            other => panic!("{backend:?}: expected time limit, got {other:?}"),
        }
    }
}

#[test]
fn warm_started_solves_survive_mid_sequence_faults() {
    // A cut-loop-shaped sequence: solve, append a cut, warm-start the next
    // solve — with a numerical fault injected mid-sequence. The ladder must
    // absorb it and the warm-started sequence must keep producing the same
    // optima as a fault-free cold sequence.
    for backend in BACKENDS {
        let mut m = knapsack();
        let plan = FaultPlan::new().inject_at(2, FaultKind::Numerical);
        let solver = Solver::new(opts(backend, plan));
        let (out, mut warm) = solver.solve_with_state(&m, None).unwrap();
        assert!((out.expect_optimal().unwrap().objective() - 15.0).abs() < 1e-6);

        // Cut off the incumbent {x0, x1, x2}: at most two of the three. The
        // optimum drops to {x2, x4} = 14.
        let vars: Vec<_> = m.vars().map(|(v, _)| v).collect();
        m.add_constr(
            "cut",
            1.0 * vars[0] + 1.0 * vars[1] + 1.0 * vars[2],
            Cmp::Le,
            2.0,
        )
        .unwrap();
        let (out, state) = solver.solve_with_state(&m, warm.as_ref()).unwrap();
        warm = state;
        let sol = out.expect_optimal().unwrap();
        assert!(
            (sol.objective() - 14.0).abs() < 1e-6,
            "{backend:?}: got {} after cut",
            sol.objective()
        );
        assert!(warm.is_some() || backend == LpBackend::DenseTableau);
    }
}
