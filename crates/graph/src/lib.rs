//! # contrarc-graph
//!
//! Directed-graph substrate for the ContrArc architecture-exploration
//! methodology: an arena-style digraph with typed node/edge weights
//! ([`DiGraph`]), simple-path enumeration between node sets ([`paths`]), and
//! a VF2-style subgraph-isomorphism engine that enumerates *all* embeddings
//! of a pattern graph in a target graph ([`iso`]).
//!
//! The paper used DotMotif for subgraph matching; this crate replaces it with
//! a self-contained implementation whose semantics are exactly what
//! Algorithm 2 of the paper needs: injective, label-compatible node mappings
//! under which every pattern edge maps to a target edge (a subgraph
//! *monomorphism*; induced matching is available as an option).
//!
//! ```rust
//! use contrarc_graph::{DiGraph, iso::{self, MatchMode}};
//!
//! // Pattern: a 2-node chain of labels "a" -> "b".
//! let mut pat = DiGraph::new();
//! let p0 = pat.add_node("a");
//! let p1 = pat.add_node("b");
//! pat.add_edge(p0, p1, ());
//!
//! // Target: two disjoint "a" -> "b" chains.
//! let mut tgt = DiGraph::new();
//! let t0 = tgt.add_node("a");
//! let t1 = tgt.add_node("b");
//! let t2 = tgt.add_node("a");
//! let t3 = tgt.add_node("b");
//! tgt.add_edge(t0, t1, ());
//! tgt.add_edge(t2, t3, ());
//!
//! let found = iso::subgraph_isomorphisms(&pat, &tgt, MatchMode::Monomorphism, |p, t| p == t);
//! assert_eq!(found.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod canon;
mod digraph;
pub mod dot;
pub mod iso;
pub mod paths;
pub mod scc;
pub mod topo;

pub use canon::{automorphisms, canonical_form, Automorphisms, CanonicalForm};
pub use digraph::{DiGraph, EdgeId, EdgeRef, NodeId};
pub use iso::{Embedding, MatchMode};
