//! Bounded-variable two-phase revised simplex with a factorized basis.
//!
//! Same driver semantics as the dense tableau engine (`simplex.rs`) — Dantzig
//! pricing with a Bland's-rule fallback after a degenerate run, bound flips,
//! phase-1 artificials only for rows whose slack cannot absorb the residual,
//! and a dual-simplex entry point for warm starts — but the basis inverse is
//! never formed. All linear algebra goes through a sparse LU factorization
//! plus a product-form eta file ([`FactorizedBasis`]): FTRAN for entering
//! columns and basic values, BTRAN for duals and `B⁻¹` rows. The eta file is
//! collapsed into a fresh factorization every
//! [`SolveOptions::refactor_every`] pivots (the retry ladder drops this to 1,
//! making every pivot a fresh factorization).
//!
//! # Determinism
//!
//! Refactorization processes basis columns in a canonical order — ascending
//! `(nonzero count, column index)` — so the factors depend only on the *set*
//! of basic columns. On top of that, every optimal finish refactorizes and
//! recomputes the basic values from scratch before extracting the solution,
//! which makes the reported values a pure function of `(basis, nonbasic
//! states, standard form)`: a warm-started solve that lands on the same
//! optimal basis as a cold solve reports bit-identical values. Under the
//! default root-only warm starts, a warm solve is only allowed to finish
//! when that landing is forced — the optimum must be primal- and
//! dual-nondegenerate (see `optimum_is_unambiguous`), and an ambiguous
//! optimum falls back to a cold solve. This is the property the exploration
//! layer's warm-vs-cold bit-identity test pins, and it survives
//! symmetry-breaking rows, which are routinely tight at symmetric optima.
//! Opt-in node warm starts ([`SolveOptions::node_warm_start`]) skip the
//! check and accept the weaker tie guarantee documented on that flag.

use crate::error::SolveError;
use crate::solver::backend::{
    BasisSnapshot, BoundHit, ColState, DualEnd, IterEnd, LpEngine, LpOutcome, RatioResult,
    BLAND_TRIGGER, PIVOT_TOL,
};
use crate::solver::budget::Deadline;
use crate::solver::factor::{FactorizedBasis, LuFactors};
use crate::solver::SolveOptions;
use crate::standard_form::StandardForm;

/// Revised simplex over a [`StandardForm`].
#[derive(Debug)]
pub(crate) struct RevisedSimplex<'a> {
    sf: &'a StandardForm,
    opts: &'a SolveOptions,
    m: usize,
    /// Total columns including artificials.
    total_cols: usize,
    /// Artificial columns: `(row, sign)` with a single `±1` entry.
    artificials: Vec<(usize, f64)>,
    /// First artificial column index (== sf.num_cols()).
    art_base: usize,
    /// Factorized basis operator; `None` only before the first factorization.
    basis_op: Option<FactorizedBasis>,
    basis: Vec<usize>,
    state: Vec<ColState>,
    xb: Vec<f64>,
    /// Current phase costs per column.
    costs: Vec<f64>,
    /// Cached reduced costs per column (recomputed each pivot).
    dvec: Vec<f64>,
    /// Fixed-at-zero artificial bounds during phase 2.
    art_fixed: bool,
    pub pivots: u64,
    degenerate_run: u32,
    deadline: Deadline,
    charged: u64,
    refactorizations: u64,
    refactor_reuses: u64,
    refactor_every: u64,
}

impl<'a> RevisedSimplex<'a> {
    pub fn new(sf: &'a StandardForm, opts: &'a SolveOptions, deadline: Deadline) -> Self {
        let m = sf.num_rows;
        RevisedSimplex {
            sf,
            opts,
            m,
            total_cols: sf.num_cols(),
            artificials: Vec::new(),
            art_base: sf.num_cols(),
            basis_op: None,
            basis: vec![usize::MAX; m],
            state: vec![ColState::AtLower; sf.num_cols()],
            xb: vec![0.0; m],
            costs: Vec::new(),
            dvec: Vec::new(),
            art_fixed: false,
            pivots: 0,
            degenerate_run: 0,
            deadline,
            charged: 0,
            refactorizations: 0,
            refactor_reuses: 0,
            refactor_every: opts.refactor_every.max(1),
        }
    }

    pub fn take_uncharged_pivots(&mut self) -> u64 {
        let n = self.pivots - self.charged;
        self.charged = self.pivots;
        n
    }

    fn check_budget(&mut self) -> Result<(), SolveError> {
        let newly = self.pivots - self.charged;
        self.charged = self.pivots;
        self.opts.budget.charge_pivots(newly)?;
        if self.deadline.expired() {
            return Err(self.deadline.to_error());
        }
        if self.xb.iter().any(|v| !v.is_finite()) {
            return Err(SolveError::Numerical(
                "basic solution went non-finite during pivoting".into(),
            ));
        }
        Ok(())
    }

    pub fn solve(&mut self) -> Result<LpOutcome, SolveError> {
        for j in 0..self.sf.num_cols() {
            if self.sf.lower[j] > self.sf.upper[j] {
                return Ok(LpOutcome::Infeasible);
            }
        }
        if self.m == 0 {
            return Ok(self.solve_unconstrained());
        }
        self.init_phase1();
        if !self.refactorize() {
            return Err(SolveError::Numerical(
                "initial basis factorization failed".into(),
            ));
        }
        if self.phase1_needed() {
            self.set_phase1_costs();
            self.iterate()?;
            let infeas: f64 = self.phase1_objective();
            if !infeas.is_finite() {
                return Err(SolveError::Numerical(
                    "phase-1 infeasibility measure is non-finite".into(),
                ));
            }
            if infeas > self.opts.feas_tol.max(1e-9) * (1.0 + self.rhs_norm().sqrt()) {
                return Ok(LpOutcome::Infeasible);
            }
            self.expel_artificials()?;
        }
        self.set_phase2_costs();
        match self.iterate()? {
            IterEnd::Optimal => {}
            IterEnd::Unbounded => return Ok(LpOutcome::Unbounded),
        }
        self.finalize_canonical();
        let out = self.finish_optimal();
        if let LpOutcome::Optimal { min_obj, .. } = &out {
            if !min_obj.is_finite() {
                return Err(SolveError::Numerical(
                    "optimal objective evaluated to a non-finite value".into(),
                ));
            }
        }
        Ok(out)
    }

    pub fn solve_warm(&mut self, snap: &BasisSnapshot) -> Result<Option<LpOutcome>, SolveError> {
        for j in 0..self.sf.num_cols() {
            if self.sf.lower[j] > self.sf.upper[j] {
                return Ok(Some(LpOutcome::Infeasible));
            }
        }
        if self.m == 0 {
            return Ok(Some(self.solve_unconstrained()));
        }
        if !self.install(snap) {
            return Ok(None);
        }
        match self.dual_iterate()? {
            DualEnd::PrimalFeasible => {}
            DualEnd::Infeasible => return Ok(Some(LpOutcome::Infeasible)),
            DualEnd::LostDualFeasibility => return Ok(None),
        }
        match self.iterate()? {
            IterEnd::Optimal => {
                self.finalize_canonical();
                if !self.opts.node_warm_start && !self.optimum_is_unambiguous() {
                    return Ok(None);
                }
                Ok(Some(self.finish_optimal()))
            }
            IterEnd::Unbounded => Ok(Some(LpOutcome::Unbounded)),
        }
    }

    /// Whether the optimum just reached is the *only* optimal `(basis,
    /// states)` pair, making a warm-started finish provably bit-identical to
    /// a cold solve of the same LP.
    ///
    /// Warm and cold solves pivot along different paths, so on an LP with
    /// several optimal bases they can finish on different ones — and the
    /// extracted values, while equal as real numbers, need not match bit for
    /// bit. The exploration layer pins warm-vs-cold *bit* identity, so a
    /// warm finish is only accepted when the optimal basis is unique:
    ///
    /// * every basic value sits strictly inside its bounds (primal
    ///   nondegeneracy — the vertex determines the basis), and
    /// * every nonbasic column that can move prices out strictly (dual
    ///   nondegeneracy — the optimal vertex is unique).
    ///
    /// Anything ambiguous returns `false` and the caller falls back to a
    /// cold solve (counted as `milp.warm_start_cold_falls`). Symmetric
    /// models are the common source of ambiguity: their symmetry-breaking
    /// rows sit tight at symmetric-tied optima. The check guards the
    /// default root-only warm starts; opt-in node warm starts skip it and
    /// accept [`SolveOptions::node_warm_start`]'s weaker tie guarantee.
    fn optimum_is_unambiguous(&mut self) -> bool {
        let ptol = self.opts.feas_tol.max(1e-9);
        for r in 0..self.m {
            let j = self.basis[r];
            let lb = self.col_lower(j);
            let ub = self.col_upper(j);
            let x = self.xb[r];
            if (lb.is_finite() && x - lb <= ptol) || (ub.is_finite() && ub - x <= ptol) {
                return false;
            }
        }
        let dtol = self.opts.dual_tol.max(1e-9);
        let y = self.btran_costs();
        for j in 0..self.total_cols {
            if matches!(self.state[j], ColState::Basic(_)) {
                continue;
            }
            // Columns fixed by their bounds cannot enter any basis.
            if self.col_lower(j) == self.col_upper(j) {
                continue;
            }
            let mut dj = self.costs[j];
            for (r, a) in self.gather_col(j) {
                dj -= y[r] * a;
            }
            if dj.abs() <= dtol {
                return false;
            }
        }
        true
    }

    /// Canonical finish: collapse the eta file into a fresh factorization and
    /// recompute the basic values from scratch, making the extracted solution
    /// a pure function of the final basis (see module docs).
    ///
    /// When the eta file is already empty the current operator *is* the
    /// canonical factorization of this basis — `refactorize` always builds in
    /// the canonical column order, and no pivot has touched the basis since —
    /// so rebuilding the LU is skipped and only the basic values are
    /// recomputed (which the rebuild path does too, keeping the extracted
    /// solution bit-identical).
    fn finalize_canonical(&mut self) {
        if let Some(op) = &self.basis_op {
            if op.num_etas() == 0 {
                self.refactor_reuses += 1;
                self.refresh_xb();
                return;
            }
        }
        if self.refactorize() {
            self.refresh_xb();
        }
    }

    fn finish_optimal(&self) -> LpOutcome {
        let values = self.extract_structural();
        let min_obj: f64 = (0..self.sf.num_cols())
            .map(|j| self.sf.obj[j] * self.col_value(j))
            .sum();
        LpOutcome::Optimal { values, min_obj }
    }

    pub fn snapshot(&self) -> Option<BasisSnapshot> {
        if self.basis.iter().any(|&b| b >= self.art_base) {
            return None;
        }
        let state = (0..self.sf.num_cols())
            .map(|j| match self.state[j] {
                ColState::AtLower => 0,
                ColState::AtUpper => 1,
                ColState::FreeZero => 2,
                ColState::Basic(_) => 3,
            })
            .collect();
        Some(BasisSnapshot {
            basis: self.basis.iter().map(|&b| b as u32).collect(),
            state,
        })
    }

    /// Install a snapshot: set states, factorize the snapshot basis, and
    /// recompute basic values. Returns `false` when the snapshot does not fit
    /// this standard form or its basis matrix is singular.
    fn install(&mut self, snap: &BasisSnapshot) -> bool {
        if snap.basis.len() != self.m || snap.state.len() != self.sf.num_cols() {
            return false;
        }
        self.artificials.clear();
        self.total_cols = self.sf.num_cols();
        self.state.truncate(self.sf.num_cols());
        for (j, &s) in snap.state.iter().enumerate() {
            self.state[j] = match s {
                0 => ColState::AtLower,
                1 => ColState::AtUpper,
                2 => ColState::FreeZero,
                _ => ColState::AtLower, // placeholder; fixed below for basics
            };
        }
        for (r, &col) in snap.basis.iter().enumerate() {
            self.basis[r] = col as usize;
            self.state[col as usize] = ColState::Basic(r as u32);
        }
        for j in 0..self.sf.num_cols() {
            match self.state[j] {
                ColState::AtLower if !self.sf.lower[j].is_finite() => {
                    self.state[j] = if self.sf.upper[j].is_finite() {
                        ColState::AtUpper
                    } else {
                        ColState::FreeZero
                    };
                }
                ColState::AtUpper if !self.sf.upper[j].is_finite() => {
                    self.state[j] = if self.sf.lower[j].is_finite() {
                        ColState::AtLower
                    } else {
                        ColState::FreeZero
                    };
                }
                _ => {}
            }
        }
        if !self.refactorize() {
            return false;
        }
        self.set_phase2_costs();
        self.refresh_xb();
        true
    }

    /// Dual simplex: from a (nominally) dual-feasible basis, pivot until the
    /// basic values are within bounds or the LP is proven infeasible.
    fn dual_iterate(&mut self) -> Result<DualEnd, SolveError> {
        let budget = 4 * (self.m as u64) + 64;
        let mut used = 0u64;
        loop {
            if self.pivots >= self.opts.max_simplex_iters {
                return Err(SolveError::IterationLimit {
                    limit: self.opts.max_simplex_iters,
                });
            }
            if used >= budget {
                return Ok(DualEnd::LostDualFeasibility);
            }
            used += 1;
            // Leaving row: the most violated basic variable.
            let mut leave: Option<(usize, f64, bool)> = None; // (row, violation, below)
            for r in 0..self.m {
                let j = self.basis[r];
                let lb = self.col_lower(j);
                let ub = self.col_upper(j);
                let x = self.xb[r];
                if x < lb - self.opts.feas_tol {
                    let v = lb - x;
                    if leave.as_ref().is_none_or(|&(_, bv, _)| v > bv) {
                        leave = Some((r, v, true));
                    }
                } else if x > ub + self.opts.feas_tol {
                    let v = x - ub;
                    if leave.as_ref().is_none_or(|&(_, bv, _)| v > bv) {
                        leave = Some((r, v, false));
                    }
                }
            }
            let Some((row, _, below)) = leave else {
                return Ok(DualEnd::PrimalFeasible);
            };

            let y = self.btran_costs();
            let rho = self.binv_row(row);

            // Entering column: dual ratio test among eligible nonbasics.
            let mut best: Option<(usize, f64, f64)> = None; // (col, ratio, |alpha|)
            for j in 0..self.total_cols {
                if matches!(self.state[j], ColState::Basic(_)) {
                    continue;
                }
                if self.col_lower(j) >= self.col_upper(j) {
                    continue; // fixed
                }
                let alpha = self.col_dot(&rho, j);
                if alpha.abs() <= PIVOT_TOL {
                    continue;
                }
                let eligible = match (self.state[j], below) {
                    (ColState::AtLower, true) => alpha < 0.0,
                    (ColState::AtLower, false) => alpha > 0.0,
                    (ColState::AtUpper, true) => alpha > 0.0,
                    (ColState::AtUpper, false) => alpha < 0.0,
                    (ColState::FreeZero, _) => true,
                    (ColState::Basic(_), _) => false,
                };
                if !eligible {
                    continue;
                }
                let dj = self.costs[j] - self.col_dot(&y, j);
                let ratio = dj.abs() / alpha.abs();
                match best {
                    None => best = Some((j, ratio, alpha.abs())),
                    Some((_, br, balpha)) => {
                        if ratio < br - 1e-12
                            || ((ratio - br).abs() <= 1e-12 && alpha.abs() > balpha)
                        {
                            best = Some((j, ratio, alpha.abs()));
                        }
                    }
                }
            }
            let Some((enter, ratio, _)) = best else {
                return Ok(DualEnd::Infeasible);
            };
            if ratio > 1e9 {
                return Ok(DualEnd::LostDualFeasibility);
            }

            let w = self.ftran_col(enter);
            if w[row].abs() <= PIVOT_TOL {
                return Ok(DualEnd::LostDualFeasibility);
            }
            let hit = if below {
                BoundHit::Lower
            } else {
                BoundHit::Upper
            };
            let leaving_col = self.basis[row];
            let bound = if below {
                self.col_lower(leaving_col)
            } else {
                self.col_upper(leaving_col)
            };
            let t = (self.xb[row] - bound) / w[row];
            let enter_val = self.nonbasic_value(enter) + t;
            for (r, &wr) in w.iter().enumerate() {
                if r != row {
                    self.xb[r] -= t * wr;
                }
            }
            self.pivot(enter, row, w, enter_val, hit)?;
            self.pivots += 1;
            if self.pivots % 64 == 63 {
                self.refresh_xb();
                self.check_budget()?;
            }
        }
    }

    // ---- setup ------------------------------------------------------------

    fn solve_unconstrained(&self) -> LpOutcome {
        let mut values = Vec::with_capacity(self.sf.num_structural);
        let mut min_obj = 0.0;
        for j in 0..self.sf.num_structural {
            let c = self.sf.obj[j];
            let v = if c > 0.0 {
                if self.sf.lower[j].is_finite() {
                    self.sf.lower[j]
                } else {
                    return LpOutcome::Unbounded;
                }
            } else if c < 0.0 {
                if self.sf.upper[j].is_finite() {
                    self.sf.upper[j]
                } else {
                    return LpOutcome::Unbounded;
                }
            } else if self.sf.lower[j].is_finite() {
                self.sf.lower[j]
            } else if self.sf.upper[j].is_finite() {
                self.sf.upper[j]
            } else {
                0.0
            };
            values.push(v);
            min_obj += c * v;
        }
        LpOutcome::Optimal { values, min_obj }
    }

    fn initial_nonbasic_state(&self, j: usize) -> ColState {
        let (lb, ub) = (self.sf.lower[j], self.sf.upper[j]);
        if lb.is_finite() {
            ColState::AtLower
        } else if ub.is_finite() {
            ColState::AtUpper
        } else {
            ColState::FreeZero
        }
    }

    fn init_phase1(&mut self) {
        let n = self.sf.num_structural;
        for j in 0..n {
            self.state[j] = self.initial_nonbasic_state(j);
        }
        let mut residual = self.sf.rhs.clone();
        for j in 0..n {
            let v = self.nonbasic_value(j);
            if v != 0.0 {
                for (r, a) in self.sf.cols[j].iter() {
                    residual[r] -= a * v;
                }
            }
        }
        for (r, &res) in residual.iter().enumerate() {
            let slack = n + r;
            let (slb, sub) = (self.sf.lower[slack], self.sf.upper[slack]);
            if res >= slb && res <= sub {
                self.state[slack] = ColState::Basic(r as u32);
                self.basis[r] = slack;
                self.xb[r] = res;
            } else {
                let clamped = res.clamp(slb, sub);
                self.state[slack] = if clamped == slb {
                    ColState::AtLower
                } else {
                    ColState::AtUpper
                };
                let rem = res - clamped;
                let sign = if rem >= 0.0 { 1.0 } else { -1.0 };
                let art_col = self.art_base + self.artificials.len();
                self.artificials.push((r, sign));
                self.state.push(ColState::Basic(r as u32));
                self.basis[r] = art_col;
                self.xb[r] = rem.abs();
            }
        }
        self.total_cols = self.art_base + self.artificials.len();
    }

    fn phase1_needed(&self) -> bool {
        !self.artificials.is_empty()
    }

    fn set_phase1_costs(&mut self) {
        self.costs = vec![0.0; self.total_cols];
        for k in 0..self.artificials.len() {
            self.costs[self.art_base + k] = 1.0;
        }
    }

    fn set_phase2_costs(&mut self) {
        self.costs = vec![0.0; self.total_cols];
        self.costs[..self.sf.num_cols()].copy_from_slice(&self.sf.obj);
        self.art_fixed = true;
    }

    fn phase1_objective(&self) -> f64 {
        (0..self.artificials.len())
            .map(|k| self.col_value(self.art_base + k).max(0.0))
            .sum()
    }

    fn rhs_norm(&self) -> f64 {
        self.sf.rhs.iter().fold(0.0_f64, |a, b| a.max(b.abs()))
    }

    /// After phase 1, pivot remaining basic artificials out of the basis, or
    /// pin them at zero if their row is linearly dependent.
    fn expel_artificials(&mut self) -> Result<(), SolveError> {
        for r in 0..self.m {
            let bcol = self.basis[r];
            if bcol < self.art_base {
                continue;
            }
            let rho = self.binv_row(r);
            let mut entering = None;
            for j in 0..self.sf.num_cols() {
                if matches!(self.state[j], ColState::Basic(_)) {
                    continue;
                }
                let wr = self.col_dot(&rho, j);
                if wr.abs() > 1e-7 {
                    entering = Some(j);
                    break;
                }
            }
            if let Some(j) = entering {
                let w = self.ftran_col(j);
                let enter_val = self.nonbasic_value(j);
                self.pivot(j, r, w, enter_val, BoundHit::Lower)?;
            }
        }
        Ok(())
    }

    // ---- basis operator ----------------------------------------------------

    /// Sparse column of the *working* matrix (structural/slack or
    /// artificial) in original-row space.
    fn gather_col(&self, j: usize) -> Vec<(usize, f64)> {
        if j >= self.art_base {
            let (r, sign) = self.artificials[j - self.art_base];
            vec![(r, sign)]
        } else {
            self.sf.cols[j].iter().collect()
        }
    }

    fn col_nnz(&self, j: usize) -> usize {
        if j >= self.art_base {
            1
        } else {
            self.sf.cols[j].nnz()
        }
    }

    /// Collapse the eta file into a fresh factorization of the current basis
    /// using the canonical column order. Returns `false` on a singular basis.
    fn refactorize(&mut self) -> bool {
        let cols: Vec<Vec<(usize, f64)>> = self.basis.iter().map(|&j| self.gather_col(j)).collect();
        let mut order: Vec<usize> = (0..self.m).collect();
        order.sort_by_key(|&r| (self.col_nnz(self.basis[r]), self.basis[r]));
        match LuFactors::build(self.m, &cols, &order) {
            Some(f) => {
                self.basis_op = Some(FactorizedBasis::new(f));
                self.refactorizations += 1;
                true
            }
            None => false,
        }
    }

    /// `w = B⁻¹ A_j` via the factorized operator (basis-position space).
    fn ftran_col(&mut self, j: usize) -> Vec<f64> {
        let mut b = vec![0.0; self.m];
        for (r, a) in self.gather_col(j) {
            b[r] = a;
        }
        self.basis_op
            .as_mut()
            .expect("basis factorized before any ftran")
            .ftran(b)
    }

    /// `y = c_Bᵀ B⁻¹` in original-row space.
    fn btran_costs(&mut self) -> Vec<f64> {
        let cb: Vec<f64> = self.basis.iter().map(|&j| self.costs[j]).collect();
        self.basis_op
            .as_mut()
            .expect("basis factorized before any btran")
            .btran(cb)
    }

    /// Row `r` of `B⁻¹` in original-row space (`ρ = B⁻ᵀ e_r`).
    fn binv_row(&mut self, r: usize) -> Vec<f64> {
        let mut e = vec![0.0; self.m];
        e[r] = 1.0;
        self.basis_op
            .as_mut()
            .expect("basis factorized before any btran")
            .btran(e)
    }

    // ---- column helpers ----------------------------------------------------

    fn col_lower(&self, j: usize) -> f64 {
        if j >= self.art_base {
            0.0
        } else {
            self.sf.lower[j]
        }
    }

    fn col_upper(&self, j: usize) -> f64 {
        if j >= self.art_base {
            if self.art_fixed {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.sf.upper[j]
        }
    }

    fn nonbasic_value(&self, j: usize) -> f64 {
        match self.state[j] {
            ColState::AtLower => self.col_lower(j),
            ColState::AtUpper => self.col_upper(j),
            ColState::FreeZero => 0.0,
            ColState::Basic(r) => self.xb[r as usize],
        }
    }

    fn col_value(&self, j: usize) -> f64 {
        self.nonbasic_value(j)
    }

    /// Dot of a dense original-row-space vector with column `j`.
    fn col_dot(&self, y: &[f64], j: usize) -> f64 {
        if j >= self.art_base {
            let (r, sign) = self.artificials[j - self.art_base];
            y[r] * sign
        } else {
            self.sf.cols[j].iter().map(|(r, a)| y[r] * a).sum()
        }
    }

    /// Recompute the cached reduced costs `d_j = c_j − c_Bᵀ B⁻¹ A_j`.
    fn recompute_reduced_costs(&mut self) {
        let y = self.btran_costs();
        self.dvec.resize(self.total_cols, 0.0);
        for j in 0..self.total_cols {
            self.dvec[j] = self.costs[j] - self.col_dot(&y, j);
        }
    }

    // ---- main loop ---------------------------------------------------------

    fn iterate(&mut self) -> Result<IterEnd, SolveError> {
        loop {
            if self.pivots >= self.opts.max_simplex_iters {
                return Err(SolveError::IterationLimit {
                    limit: self.opts.max_simplex_iters,
                });
            }
            if self.pivots % 256 == 255 {
                self.refresh_xb();
                self.check_budget()?;
            }
            self.recompute_reduced_costs();
            let bland = self.opts.force_bland || self.degenerate_run >= BLAND_TRIGGER;
            let Some((j, dir)) = self.price_cached(bland) else {
                return Ok(IterEnd::Optimal);
            };
            let w = self.ftran_col(j);
            match self.ratio_test(j, dir, &w, bland) {
                RatioResult::Unbounded => return Ok(IterEnd::Unbounded),
                RatioResult::BoundFlip { t } => {
                    self.apply_bound_flip(j, dir, t, &w);
                    self.pivots += 1;
                    self.degenerate_run = 0;
                }
                RatioResult::Pivot { row, t, hit } => {
                    let enter_val = self.nonbasic_value(j) + dir * t;
                    for (r, &wr) in w.iter().enumerate() {
                        if r != row {
                            self.xb[r] -= dir * t * wr;
                        }
                    }
                    self.pivot(j, row, w, enter_val, hit)?;
                    self.pivots += 1;
                    if t <= 1e-12 {
                        self.degenerate_run += 1;
                    } else {
                        self.degenerate_run = 0;
                    }
                }
            }
        }
    }

    /// Choose an entering column from the cached reduced costs; returns
    /// `(col, direction)`.
    fn price_cached(&self, bland: bool) -> Option<(usize, f64)> {
        let tol = self.opts.dual_tol;
        let mut best: Option<(usize, f64, f64)> = None; // (col, dj, dir)
        for j in 0..self.total_cols {
            let st = self.state[j];
            if matches!(st, ColState::Basic(_)) {
                continue;
            }
            if self.col_lower(j) >= self.col_upper(j) {
                continue;
            }
            let dj = self.dvec[j];
            let dir = match st {
                ColState::AtLower if dj < -tol => 1.0,
                ColState::AtUpper if dj > tol => -1.0,
                ColState::FreeZero if dj.abs() > tol => -dj.signum(),
                _ => continue,
            };
            if bland {
                return Some((j, dir));
            }
            match best {
                Some((_, bd, _)) if dj.abs() <= bd.abs() => {}
                _ => best = Some((j, dj, dir)),
            }
        }
        best.map(|(j, _, dir)| (j, dir))
    }

    fn ratio_test(&self, j: usize, dir: f64, w: &[f64], bland: bool) -> RatioResult {
        let own_range = self.col_upper(j) - self.col_lower(j);
        let mut t_min = if own_range.is_finite() {
            own_range
        } else {
            f64::INFINITY
        };
        let mut choice: Option<(usize, f64, BoundHit)> = None;

        for r in 0..self.m {
            let rate = dir * w[r]; // xb[r] changes by -rate·t
            let bcol = self.basis[r];
            if rate > PIVOT_TOL {
                let lb = self.col_lower(bcol);
                if lb.is_finite() {
                    let limit = ((self.xb[r] - lb) / rate).max(0.0);
                    if self.better_ratio(limit, t_min, r, w, &choice, bland) {
                        t_min = limit;
                        choice = Some((r, limit, BoundHit::Lower));
                    }
                }
            } else if rate < -PIVOT_TOL {
                let ub = self.col_upper(bcol);
                if ub.is_finite() {
                    let limit = ((ub - self.xb[r]) / -rate).max(0.0);
                    if self.better_ratio(limit, t_min, r, w, &choice, bland) {
                        t_min = limit;
                        choice = Some((r, limit, BoundHit::Upper));
                    }
                }
            }
        }

        match choice {
            None if t_min.is_infinite() => RatioResult::Unbounded,
            None => RatioResult::BoundFlip { t: t_min },
            Some((row, t, hit)) => {
                if own_range.is_finite() && own_range < t - 1e-12 {
                    RatioResult::BoundFlip { t: own_range }
                } else {
                    RatioResult::Pivot { row, t, hit }
                }
            }
        }
    }

    fn better_ratio(
        &self,
        limit: f64,
        t_min: f64,
        r: usize,
        w: &[f64],
        choice: &Option<(usize, f64, BoundHit)>,
        bland: bool,
    ) -> bool {
        if limit < t_min - 1e-12 {
            return true;
        }
        if limit > t_min + 1e-12 {
            return false;
        }
        match choice {
            None => true,
            Some((cr, _, _)) => {
                if bland {
                    self.basis[r] < self.basis[*cr]
                } else {
                    w[r].abs() > w[*cr].abs()
                }
            }
        }
    }

    fn apply_bound_flip(&mut self, j: usize, dir: f64, t: f64, w: &[f64]) {
        for (xb, &wr) in self.xb.iter_mut().zip(w) {
            *xb -= dir * t * wr;
        }
        self.state[j] = match self.state[j] {
            ColState::AtLower => ColState::AtUpper,
            ColState::AtUpper => ColState::AtLower,
            other => other, // free variables never bound-flip with finite t
        };
    }

    /// Commit a basis change: update states and values, append the eta, and
    /// refactorize once the eta file reaches `refactor_every`.
    fn pivot(
        &mut self,
        j: usize,
        row: usize,
        w: Vec<f64>,
        enter_val: f64,
        hit: BoundHit,
    ) -> Result<(), SolveError> {
        let leaving = self.basis[row];
        self.state[leaving] = match hit {
            BoundHit::Lower => ColState::AtLower,
            BoundHit::Upper => ColState::AtUpper,
        };
        self.basis[row] = j;
        self.state[j] = ColState::Basic(row as u32);
        self.xb[row] = enter_val;

        let op = self
            .basis_op
            .as_mut()
            .expect("basis factorized before any pivot");
        op.push_eta(row, w);
        if op.num_etas() as u64 >= self.refactor_every {
            if !self.refactorize() {
                return Err(SolveError::Numerical(
                    "basis refactorization failed (singular basis)".into(),
                ));
            }
            self.refresh_xb();
        }
        Ok(())
    }

    /// Recompute basic values `x_B = B⁻¹ (b − N x_N)` from scratch.
    fn refresh_xb(&mut self) {
        let mut v = self.sf.rhs.clone();
        for j in 0..self.total_cols {
            if matches!(self.state[j], ColState::Basic(_)) {
                continue;
            }
            let x = self.nonbasic_value(j);
            if x != 0.0 {
                if j >= self.art_base {
                    let (r, sign) = self.artificials[j - self.art_base];
                    v[r] -= sign * x;
                } else {
                    for (r, a) in self.sf.cols[j].iter() {
                        v[r] -= a * x;
                    }
                }
            }
        }
        self.xb = self
            .basis_op
            .as_mut()
            .expect("basis factorized before refresh")
            .ftran(v);
    }

    fn extract_structural(&self) -> Vec<f64> {
        (0..self.sf.num_structural)
            .map(|j| self.sf.unscale_value(j, self.col_value(j)))
            .collect()
    }
}

impl<'a> LpEngine<'a> for RevisedSimplex<'a> {
    fn new(sf: &'a StandardForm, opts: &'a SolveOptions, deadline: Deadline) -> Self {
        RevisedSimplex::new(sf, opts, deadline)
    }
    fn solve(&mut self) -> Result<LpOutcome, SolveError> {
        RevisedSimplex::solve(self)
    }
    fn solve_warm(&mut self, snap: &BasisSnapshot) -> Result<Option<LpOutcome>, SolveError> {
        RevisedSimplex::solve_warm(self, snap)
    }
    fn snapshot(&self) -> Option<BasisSnapshot> {
        RevisedSimplex::snapshot(self)
    }
    fn pivots(&self) -> u64 {
        self.pivots
    }
    fn take_uncharged_pivots(&mut self) -> u64 {
        RevisedSimplex::take_uncharged_pivots(self)
    }
    fn refactorizations(&self) -> u64 {
        self.refactorizations
    }
    fn refactor_reuses(&self) -> u64 {
        self.refactor_reuses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cmp, Model, Sense};

    fn lp(model: &Model) -> LpOutcome {
        let sf = StandardForm::build(model, None);
        let opts = SolveOptions::default();
        RevisedSimplex::new(&sf, &opts, Deadline::unlimited())
            .solve()
            .expect("no iteration limit expected")
    }

    fn optimal_obj(model: &Model) -> f64 {
        let sf = StandardForm::build(model, None);
        let opts = SolveOptions::default();
        match RevisedSimplex::new(&sf, &opts, Deadline::unlimited())
            .solve()
            .unwrap()
        {
            LpOutcome::Optimal { min_obj, .. } => sf.model_objective(min_obj),
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn textbook_max_lp() {
        // max 3x + 4y s.t. x + 2y <= 14, 3x - y >= 0, x - y <= 2
        let mut m = Model::new("t");
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.add_constr("c1", x + 2.0 * y, Cmp::Le, 14.0).unwrap();
        m.add_constr("c2", 3.0 * x - y, Cmp::Ge, 0.0).unwrap();
        m.add_constr("c3", x - y, Cmp::Le, 2.0).unwrap();
        m.set_objective(Sense::Maximize, 3.0 * x + 4.0 * y);
        assert!((optimal_obj(&m) - 34.0).abs() < 1e-6);
    }

    #[test]
    fn equality_constraints_need_phase1() {
        let mut m = Model::new("t");
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.add_constr("s", x + y, Cmp::Eq, 10.0).unwrap();
        m.add_constr("d", x - y, Cmp::Eq, 4.0).unwrap();
        m.set_objective(Sense::Minimize, x + y);
        match lp(&m) {
            LpOutcome::Optimal { values, min_obj } => {
                assert!((values[0] - 7.0).abs() < 1e-6);
                assert!((values[1] - 3.0).abs() < 1e-6);
                assert!((min_obj - 10.0).abs() < 1e-6);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn detects_infeasible() {
        let mut m = Model::new("t");
        let x = m.add_continuous("x", 0.0, 1.0);
        m.add_constr("lo", 1.0 * x, Cmp::Ge, 2.0).unwrap();
        assert!(matches!(lp(&m), LpOutcome::Infeasible));
    }

    #[test]
    fn detects_unbounded() {
        let mut m = Model::new("t");
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        m.add_constr("c", 1.0 * x, Cmp::Ge, 1.0).unwrap();
        m.set_objective(Sense::Maximize, 1.0 * x);
        assert!(matches!(lp(&m), LpOutcome::Unbounded));
    }

    #[test]
    fn degenerate_lp_terminates() {
        let mut m = Model::new("t");
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        for k in 1..=6 {
            m.add_constr(format!("c{k}"), (k as f64) * x + y, Cmp::Le, 0.0)
                .unwrap();
        }
        m.set_objective(Sense::Maximize, x + y);
        assert!((optimal_obj(&m) - 0.0).abs() < 1e-9);
    }

    #[test]
    fn upper_bounded_vars_flip() {
        let mut m = Model::new("t");
        let x = m.add_continuous("x", 0.0, 1.0);
        let y = m.add_continuous("y", 0.0, 1.0);
        m.add_constr("c", x + y, Cmp::Le, 1.5).unwrap();
        m.set_objective(Sense::Maximize, x + y);
        assert!((optimal_obj(&m) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn free_variable_equality() {
        let mut m = Model::new("t");
        let t = m.add_free("t");
        m.add_constr("fix", 1.0 * t, Cmp::Eq, 5.0).unwrap();
        m.set_objective(Sense::Minimize, 1.0 * t);
        assert!((optimal_obj(&m) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn aggressive_refactorization_agrees() {
        // refactor_every = 1 (every pivot rebuilds the LU) must not change
        // the optimum — this is the retry ladder's "refactorize" rung.
        let mut m = Model::new("t");
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.add_constr("c1", x + 2.0 * y, Cmp::Le, 14.0).unwrap();
        m.add_constr("c2", 3.0 * x - y, Cmp::Ge, 0.0).unwrap();
        m.add_constr("c3", x - y, Cmp::Le, 2.0).unwrap();
        m.set_objective(Sense::Maximize, 3.0 * x + 4.0 * y);
        let sf = StandardForm::build(&m, None);
        let opts = SolveOptions {
            refactor_every: 1,
            ..SolveOptions::default()
        };
        let mut sx = RevisedSimplex::new(&sf, &opts, Deadline::unlimited());
        match sx.solve().unwrap() {
            LpOutcome::Optimal { min_obj, .. } => {
                assert!((sf.model_objective(min_obj) - 34.0).abs() < 1e-6);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
        assert!(sx.refactorizations > 1, "every pivot should refactorize");
        // The last pivot already rebuilt the LU, so the canonical finish
        // finds an empty eta file and reuses the factorization.
        assert!(
            sx.refactor_reuses >= 1,
            "optimal finish should reuse the fresh factorization"
        );
    }

    #[test]
    fn canonical_finish_reuse_preserves_solution() {
        // Same LP solved with an eta file forced empty at the finish
        // (refactor_every = 1) and with the default cadence: bit-identical
        // optima either way, proving the reuse path changes no values.
        let mut m = Model::new("t");
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.add_constr("c1", x + 2.0 * y, Cmp::Le, 14.0).unwrap();
        m.add_constr("c2", 3.0 * x - y, Cmp::Ge, 0.0).unwrap();
        m.add_constr("c3", x - y, Cmp::Le, 2.0).unwrap();
        m.set_objective(Sense::Maximize, 3.0 * x + 4.0 * y);
        let sf = StandardForm::build(&m, None);
        let solve_with = |refactor_every: u64| {
            let opts = SolveOptions {
                refactor_every,
                ..SolveOptions::default()
            };
            let mut sx = RevisedSimplex::new(&sf, &opts, Deadline::unlimited());
            let out = sx.solve().unwrap();
            let LpOutcome::Optimal { values, min_obj } = out else {
                panic!("expected optimal");
            };
            (values, min_obj, sx.refactor_reuses)
        };
        let (v1, o1, reuses1) = solve_with(1);
        let (v2, o2, _) = solve_with(SolveOptions::default().refactor_every);
        assert!(reuses1 >= 1, "reuse path must be exercised");
        assert_eq!(o1.to_bits(), o2.to_bits());
        for (a, b) in v1.iter().zip(v2.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn warm_start_dual_repair_after_bound_change() {
        // Solve, snapshot, tighten a bound that cuts off the optimum, and
        // dual-repair from the snapshot; compare against a cold solve.
        let mut m = Model::new("t");
        let x = m.add_continuous("x", 0.0, 10.0);
        let y = m.add_continuous("y", 0.0, 10.0);
        m.add_constr("c1", x + y, Cmp::Le, 8.0).unwrap();
        m.add_constr("c2", 2.0 * x + y, Cmp::Le, 12.0).unwrap();
        m.set_objective(Sense::Maximize, 3.0 * x + 2.0 * y);
        let opts = SolveOptions::default();
        let sf = StandardForm::build(&m, None);
        let mut sx = RevisedSimplex::new(&sf, &opts, Deadline::unlimited());
        let first = sx.solve().unwrap();
        let LpOutcome::Optimal { values, .. } = &first else {
            panic!("expected optimal, got {first:?}");
        };
        let x0 = values[0];
        let snap = sx.snapshot().expect("clean basis");

        // Tighten x's upper bound below its optimal value.
        let lbs: Vec<f64> = vec![0.0, 0.0];
        let ubs: Vec<f64> = vec![(x0 - 1.0).max(0.0), 10.0];
        let sf2 = sf.rebind(&lbs, &ubs);
        let mut warm_sx = RevisedSimplex::new(&sf2, &opts, Deadline::unlimited());
        let warm = warm_sx
            .solve_warm(&snap)
            .unwrap()
            .expect("snapshot should install");
        let mut cold_sx = RevisedSimplex::new(&sf2, &opts, Deadline::unlimited());
        let cold = cold_sx.solve().unwrap();
        match (warm, cold) {
            (
                LpOutcome::Optimal {
                    min_obj: w,
                    values: wv,
                },
                LpOutcome::Optimal {
                    min_obj: c,
                    values: cv,
                },
            ) => {
                assert!((w - c).abs() < 1e-9, "warm {w} vs cold {c}");
                for (a, b) in wv.iter().zip(&cv) {
                    assert!((a - b).abs() < 1e-9);
                }
                assert!(
                    warm_sx.pivots <= cold_sx.pivots,
                    "dual repair ({} pivots) should not exceed cold start ({})",
                    warm_sx.pivots,
                    cold_sx.pivots
                );
            }
            other => panic!("expected two optima, got {other:?}"),
        }
    }
}
