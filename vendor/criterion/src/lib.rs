//! Offline stand-in for the `criterion` crate (0.7 API subset).
//!
//! Provides `Criterion`/`BenchmarkGroup`/`Bencher` and the
//! `criterion_group!`/`criterion_main!` macros so the workspace's
//! `harness = false` bench targets build and run without the real crate.
//! Every benchmark executes its routine once and prints the wall-clock time —
//! the behaviour of real criterion's `--test` mode, which is also what
//! `cargo test` exercises for bench targets. No statistics, no HTML reports.

#![forbid(unsafe_code)]

use std::time::Instant;

/// Benchmark driver (stand-in for `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
        }
    }
}

/// A named collection of benchmarks (stand-in for
/// `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; single-pass execution ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; single-pass execution ignores it.
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Run one benchmark routine and report its wall-clock time.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher { elapsed_ns: 0 };
        let started = Instant::now();
        f(&mut bencher);
        let total = started.elapsed();
        println!("bench: {}/{} ... {:?}", self.name, id, total);
        self
    }

    /// End the group. No-op in single-pass mode.
    pub fn finish(self) {}
}

/// Timing handle passed to benchmark closures (stand-in for
/// `criterion::Bencher`).
pub struct Bencher {
    elapsed_ns: u128,
}

impl Bencher {
    /// Execute the routine once, timing it.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let started = Instant::now();
        let out = routine();
        self.elapsed_ns += started.elapsed().as_nanos();
        drop(out);
    }
}

/// Opaque-value helper re-exported for convenience; real criterion also has
/// one, though the benches in this workspace use `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declare a group of benchmark functions (stand-in for
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($function(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups (stand-in for
/// `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_each_function_once() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut runs = 0;
        group.sample_size(10);
        group.bench_function(format!("f{}", 1), |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        group.finish();
        assert_eq!(runs, 1);
    }
}
