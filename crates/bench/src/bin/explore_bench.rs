//! Bench smoke for the parallel exploration engine (not part of the paper).
//!
//! Explores a small RPL instance at `threads = 1` (the serial baseline) and
//! `threads = 0` (every available core) and writes `BENCH_explore.json`
//! recording per-phase wall-clock times, the refinement-cache hit rate, and
//! the parallel speedup. CI runs this as a smoke check that the parallel
//! engine reproduces the serial optimum; the speedup figure is only
//! meaningful on a multi-core runner, so the core count is recorded next to
//! it.
//!
//! Usage: `explore_bench [output-path]` (default `BENCH_explore.json`).

use contrarc::{explore, ExplorationStats, ExplorerConfig};
use contrarc_systems::rpl::{build, RplConfig, RplLines};
use std::time::Instant;

struct Run {
    threads: usize,
    effective_threads: usize,
    wall_secs: f64,
    cost: f64,
    stats: ExplorationStats,
}

fn run_once(threads: usize) -> Run {
    let p = build(&RplConfig::default(), RplLines::Both);
    let cfg = ExplorerConfig {
        threads,
        ..ExplorerConfig::complete()
    };
    let t0 = Instant::now();
    let result = explore(&p, &cfg).expect("exploration failed");
    let wall_secs = t0.elapsed().as_secs_f64();
    let cost = result
        .architecture()
        .expect("RPL default instance is feasible")
        .cost();
    Run {
        threads,
        effective_threads: contrarc_par::effective_threads(threads),
        wall_secs,
        cost,
        stats: *result.stats(),
    }
}

fn json_run(r: &Run) -> String {
    let s = &r.stats;
    let consulted = s.cache_hits + s.cache_misses;
    let hit_rate = if consulted == 0 {
        0.0
    } else {
        s.cache_hits as f64 / consulted as f64
    };
    format!(
        concat!(
            "    {{\n",
            "      \"threads\": {},\n",
            "      \"effective_threads\": {},\n",
            "      \"wall_secs\": {:.6},\n",
            "      \"milp_secs\": {:.6},\n",
            "      \"refine_secs\": {:.6},\n",
            "      \"cert_secs\": {:.6},\n",
            "      \"iterations\": {},\n",
            "      \"cuts_added\": {},\n",
            "      \"cache_hits\": {},\n",
            "      \"cache_misses\": {},\n",
            "      \"cache_hit_rate\": {:.4},\n",
            "      \"optimum\": {:.6}\n",
            "    }}"
        ),
        r.threads,
        r.effective_threads,
        r.wall_secs,
        s.milp_time,
        s.refine_time,
        s.cert_time,
        s.iterations,
        s.cuts_added,
        s.cache_hits,
        s.cache_misses,
        hit_rate,
        r.cost,
    )
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_explore.json".to_string());

    // Serial baseline first, then all cores; warm-up runs excluded on
    // purpose — this is a smoke check, not a statistical benchmark.
    let serial = run_once(1);
    let parallel = run_once(0);

    assert_eq!(
        serial.cost.to_bits(),
        parallel.cost.to_bits(),
        "parallel optimum must be bit-identical to serial"
    );
    assert_eq!(serial.stats.iterations, parallel.stats.iterations);
    assert_eq!(serial.stats.cuts_added, parallel.stats.cuts_added);

    let speedup = serial.wall_secs / parallel.wall_secs.max(1e-12);
    let json = format!(
        concat!(
            "{{\n",
            "  \"case\": \"rpl-default-both\",\n",
            "  \"cores\": {},\n",
            "  \"speedup_serial_over_max_threads\": {:.4},\n",
            "  \"runs\": [\n{},\n{}\n  ]\n",
            "}}\n"
        ),
        contrarc_par::available_parallelism(),
        speedup,
        json_run(&serial),
        json_run(&parallel),
    );
    std::fs::write(&out_path, &json).expect("write bench report");
    eprintln!(
        "explore_bench: serial {:.3}s, max-threads {:.3}s ({} cores, speedup {:.2}x) -> {}",
        serial.wall_secs,
        parallel.wall_secs,
        contrarc_par::available_parallelism(),
        speedup,
        out_path
    );
}
