//! Problem 2: encoding component-level contracts into a MILP.
//!
//! The encoding follows Section III/IV-A of the paper:
//!
//! * a binary `e_{i,j}` per candidate edge and a binary `m_{i,x}` per
//!   node/implementation pair, with `β_i = Σ_x m_{i,x}` the instantiation
//!   indicator;
//! * the interconnection contract `C^C` — map-iff-connected, fan bounds
//!   `M`/`N`, and in↔out transit coupling;
//! * the flow contract `C^F` — per-edge flow variables, throughput limits,
//!   and conservation with generated/consumed flow from the selected
//!   implementation's attributes;
//! * the timing contract `C^T` — nominal/actual event times per edge with
//!   implementation-dependent jitter windows and latency bounds;
//! * the additive cost objective `Σ α_i β_i c_i`.
//!
//! System-level contracts are deliberately *not* encoded here — they are
//! checked lazily by refinement (Problem 3) and turned into cuts
//! (Problem 4). The monolithic alternative lives in
//! [`baseline`](crate::baseline).

use crate::attr;
use crate::library::ImplId;
use crate::problem::Problem;
use crate::sym::SymmetryConfig;
use contrarc_graph::{EdgeId, NodeId};
use contrarc_milp::encode as menc;
use contrarc_milp::{Cmp, LinExpr, Model, Sense, SolveError, VarId};
use std::collections::{BTreeMap, BTreeSet};

/// The Problem-2 MILP together with its variable registry.
#[derive(Debug, Clone)]
pub struct Encoding {
    /// The MILP (objective: minimize weighted cost).
    pub model: Model,
    /// `e_{i,j}` per candidate edge, indexed by [`EdgeId::index`].
    pub edge_vars: Vec<VarId>,
    /// `m_{i,x}` per node, indexed by [`NodeId::index`].
    pub map_vars: Vec<Vec<(ImplId, VarId)>>,
    /// `β_i` per node.
    pub beta_vars: Vec<VarId>,
    /// Per-edge flow variables (empty when the flow viewpoint is disabled).
    pub flow_vars: Vec<VarId>,
    /// Per-edge nominal event times `τ` (empty when timing is disabled).
    pub tau_vars: Vec<VarId>,
    /// Per-edge actual event times `t` (empty when timing is disabled).
    pub t_vars: Vec<VarId>,
}

impl Encoding {
    /// The selection variable of a candidate edge.
    #[must_use]
    pub fn edge_var(&self, e: EdgeId) -> VarId {
        self.edge_vars[e.index()]
    }

    /// The mapping variable `m_{i,x}`, if `x` implements `i`'s type.
    #[must_use]
    pub fn map_var(&self, node: NodeId, imp: ImplId) -> Option<VarId> {
        self.map_vars[node.index()]
            .iter()
            .find(|(i, _)| *i == imp)
            .map(|(_, v)| *v)
    }

    /// The instantiation indicator `β_i`.
    #[must_use]
    pub fn beta_var(&self, node: NodeId) -> VarId {
        self.beta_vars[node.index()]
    }
}

/// Symmetry-breaking constraint `β_a ≥ β_b` for interchangeable slots.
fn enc_sym(model: &mut Model, beta_vars: &[VarId], a: usize, b: usize) -> Result<(), SolveError> {
    model.add_constr(
        format!("sym[{a},{b}]"),
        LinExpr::var(beta_vars[b]) - LinExpr::var(beta_vars[a]),
        Cmp::Le,
        0.0,
    )?;
    Ok(())
}

/// Clamp an attribute to a cap so `+∞` defaults become vacuous-but-linear.
fn clamped(v: f64, cap: f64) -> f64 {
    if v.is_finite() {
        v.min(cap)
    } else {
        cap
    }
}

/// Build the Problem-2 MILP for a problem instance, with the default
/// symmetry-breaking rows (on).
///
/// # Errors
///
/// Returns [`SolveError::InvalidModel`] when the problem fails
/// [`Problem::validate`]-level invariants needed by the encoding (e.g. a
/// node type without implementations).
pub fn encode_problem2(problem: &Problem) -> Result<Encoding, SolveError> {
    encode_problem2_sym(problem, &SymmetryConfig::default())
}

/// Build the Problem-2 MILP with explicit control over the symmetry rows
/// ([`SymmetryConfig::milp_rows`]; `orbit_pruning` does not affect the
/// encoding). With rows off the model is exactly the pre-symmetry encoding.
///
/// # Errors
///
/// Returns [`SolveError::InvalidModel`] when the problem fails
/// [`Problem::validate`]-level invariants needed by the encoding (e.g. a
/// node type without implementations).
pub fn encode_problem2_sym(
    problem: &Problem,
    symmetry: &SymmetryConfig,
) -> Result<Encoding, SolveError> {
    let issues = problem.validate();
    if !issues.is_empty() {
        return Err(SolveError::InvalidModel(issues.join("; ")));
    }

    let t = &problem.template;
    let lib = &problem.library;
    let spec = &problem.spec;
    let mut model = Model::new(format!("{}-p2", t.name()));

    // --- decision variables -------------------------------------------------
    let edge_vars: Vec<VarId> = t
        .candidate_edges()
        .map(|(_, a, b)| model.add_binary(format!("e[{}->{}]", t.node(a).name, t.node(b).name)))
        .collect();

    let mut map_vars: Vec<Vec<(ImplId, VarId)>> = Vec::with_capacity(t.num_nodes());
    let mut beta_vars: Vec<VarId> = Vec::with_capacity(t.num_nodes());
    for n in t.node_ids() {
        let info = t.node(n);
        let vars: Vec<(ImplId, VarId)> = lib
            .impls_of_type(info.ty)
            .iter()
            .map(|&x| {
                let v =
                    model.add_binary(format!("m[{},{}]", info.name, lib.implementation(x).name));
                (x, v)
            })
            .collect();
        map_vars.push(vars);
        beta_vars.push(model.add_binary(format!("beta[{}]", info.name)));
    }

    let timing = spec.timing.is_some();
    let flow = spec.flow.is_some();
    let flow_vars: Vec<VarId> = if flow {
        t.candidate_edges()
            .map(|(_, a, b)| {
                model.add_continuous(
                    format!("f[{}->{}]", t.node(a).name, t.node(b).name),
                    0.0,
                    spec.flow_cap,
                )
            })
            .collect()
    } else {
        Vec::new()
    };
    let (tau_vars, t_vars): (Vec<VarId>, Vec<VarId>) = if timing {
        let tau = t
            .candidate_edges()
            .map(|(_, a, b)| {
                model.add_continuous(
                    format!("tau[{}->{}]", t.node(a).name, t.node(b).name),
                    0.0,
                    spec.horizon,
                )
            })
            .collect();
        let tt = t
            .candidate_edges()
            .map(|(_, a, b)| {
                model.add_continuous(
                    format!("t[{}->{}]", t.node(a).name, t.node(b).name),
                    0.0,
                    spec.horizon,
                )
            })
            .collect();
        (tau, tt)
    } else {
        (Vec::new(), Vec::new())
    };

    // --- interconnection contract C^C ---------------------------------------
    for n in t.node_ids() {
        let info = t.node(n);
        let cfg = t.type_config(info.ty);
        let beta = beta_vars[n.index()];
        let maps: Vec<VarId> = map_vars[n.index()].iter().map(|&(_, v)| v).collect();

        // β_i = Σ_x m_{i,x} (assumption φ_A: exactly one impl iff connected).
        let sum_m = LinExpr::sum(maps.iter().copied());
        model.add_constr(
            format!("map_iff[{}]", info.name),
            sum_m - LinExpr::var(beta),
            Cmp::Eq,
            0.0,
        )?;

        let in_edges: Vec<VarId> = t
            .graph()
            .in_edges(n)
            .map(|e| edge_vars[e.id.index()])
            .collect();
        let out_edges: Vec<VarId> = t
            .graph()
            .out_edges(n)
            .map(|e| edge_vars[e.id.index()])
            .collect();
        let incident: Vec<VarId> = in_edges.iter().chain(out_edges.iter()).copied().collect();

        // β_i = 1 ⟺ at least one incident connection.
        if incident.is_empty() {
            // Isolated candidate node can never be instantiated…
            if info.required {
                return Err(SolveError::InvalidModel(format!(
                    "required node {} has no candidate edges",
                    info.name
                )));
            }
            model.add_constr(
                format!("isolated[{}]", info.name),
                LinExpr::var(beta),
                Cmp::Le,
                0.0,
            )?;
        } else {
            menc::indicator_or(&mut model, format!("inst[{}]", info.name), beta, &incident)?;
        }

        if info.required {
            model.add_constr(
                format!("required[{}]", info.name),
                LinExpr::var(beta),
                Cmp::Ge,
                1.0,
            )?;
        }

        // Fan bounds M / N (guarantee φ_G).
        if (cfg.max_in as usize) < in_edges.len() {
            model.add_constr(
                format!("fan_in[{}]", info.name),
                LinExpr::sum(in_edges.iter().copied()),
                Cmp::Le,
                f64::from(cfg.max_in),
            )?;
        }
        if (cfg.max_out as usize) < out_edges.len() {
            model.add_constr(
                format!("fan_out[{}]", info.name),
                LinExpr::sum(out_edges.iter().copied()),
                Cmp::Le,
                f64::from(cfg.max_out),
            )?;
        }

        // Transit coupling: connected on one side ⇒ connected on the other.
        if !cfg.source && !cfg.sink {
            let sum_out = LinExpr::sum(out_edges.iter().copied());
            for (k, &ein) in in_edges.iter().enumerate() {
                model.add_constr(
                    format!("transit_io[{},{k}]", info.name),
                    LinExpr::var(ein) - sum_out.clone(),
                    Cmp::Le,
                    0.0,
                )?;
            }
            let sum_in = LinExpr::sum(in_edges.iter().copied());
            for (k, &eout) in out_edges.iter().enumerate() {
                model.add_constr(
                    format!("transit_oi[{},{k}]", info.name),
                    LinExpr::var(eout) - sum_in.clone(),
                    Cmp::Le,
                    0.0,
                )?;
            }
        }
    }

    // --- symmetry breaking ---------------------------------------------------
    // Orbits of the encoding automorphism group: any permutation preserving
    // type, required flag, cost weight, and candidate adjacency maps a
    // solution of the model (of this one, and of every later cut-augmented
    // model, since certificate cuts are generated per isomorphic embedding
    // and so are closed under these permutations) to an equal-cost solution.
    // Ordering β along the orbits therefore keeps at least the β-lex-largest
    // member of every solution class while pruning its mirror images from
    // branch-and-bound.
    if symmetry.milp_rows {
        let aut = crate::sym::encoding_automorphisms(problem);
        if !aut.is_trivial() {
            let mut sym_rows = 0u64;
            let mut edges: Vec<(usize, usize)> = t
                .candidate_edges()
                .map(|(_, a, b)| (a.index(), b.index()))
                .collect();
            edges.sort_unstable();
            // Is swapping just u and v an automorphism? (Labels already agree
            // for nodes of one orbit, so only adjacency needs checking.)
            let transposable = |u: usize, v: usize| {
                let mut mapped: Vec<(usize, usize)> = edges
                    .iter()
                    .map(|&(a, b)| {
                        let m = |x: usize| match x {
                            _ if x == u => v,
                            _ if x == v => u,
                            _ => x,
                        };
                        (m(a), m(b))
                    })
                    .collect();
                mapped.sort_unstable();
                mapped == edges
            };

            // A pairwise-transposable subset of an orbit carries a full
            // symmetric group, where a monotone β-chain keeps exactly the
            // lex-largest arrangement. Greedily partition each orbit into
            // such cliques and chain each one; these two-term rows are
            // redundant with the prefix-lex rows below but propagate much
            // better through the LP relaxation.
            for orbit in aut.orbits() {
                if orbit.len() < 2 {
                    continue;
                }
                let mut cliques: Vec<Vec<usize>> = Vec::new();
                for &v in &orbit {
                    match cliques
                        .iter_mut()
                        .find(|c| c.iter().all(|&u| transposable(u, v)))
                    {
                        Some(c) => c.push(v),
                        None => cliques.push(vec![v]),
                    }
                }
                for clique in &cliques {
                    for pair in clique.windows(2) {
                        enc_sym(&mut model, &beta_vars, pair[0], pair[1])?;
                        sym_rows += 1;
                    }
                }
            }

            // Symmetry beyond single transpositions (rotations, coupled
            // swaps): one prefix-lexicographic row per group element σ
            // forces β ≥_lex β∘σ over the first moved positions. The
            // β-lex-max member of every solution orbit satisfies all of
            // these rows simultaneously, so none cuts a whole class — and
            // that holds for any subset of group elements, so capping the
            // closure below stays sound (just weaker). For small groups
            // the closure gives the complete lex-leader constraint set;
            // generator-only rows leave most composite symmetries (e.g.
            // the 3-cycles of a line-permutation group) unbroken.
            const MAX_GROUP: usize = 64;
            let n = aut.num_nodes();
            let identity: Vec<usize> = (0..n).collect();
            let mut elems: BTreeSet<Vec<usize>> = BTreeSet::new();
            elems.insert(identity.clone());
            let mut frontier: Vec<Vec<usize>> = vec![identity.clone()];
            while let Some(p) = frontier.pop() {
                for g in aut.generators() {
                    let q: Vec<usize> = (0..n).map(|v| g[p[v]]).collect();
                    if elems.len() >= MAX_GROUP {
                        frontier.clear();
                        break;
                    }
                    if elems.insert(q.clone()) {
                        frontier.push(q);
                    }
                }
            }

            // The ordered binary vector each row compares reads, per moved
            // node ascending, first β then the mapping variables (σ links
            // m[v][i] to m[σ(v)][i] — same type, same menu, same order).
            // Rows over β alone are vacuous whenever every node of an
            // orbit is instantiated (β ≡ 1, the common case for slim
            // templates); the mapping variables carry the real symmetry
            // of "which line runs which implementations". The prefix is
            // capped so the dominant weight stays ≤ 2^7: power-of-two
            // weights are exact in f64, but wide spreads against the
            // unit-coefficient rows degrade basis conditioning — the
            // retry ladder was observed exhausting itself on singular
            // refactorizations at 2^23, and still at 2^15, on heavily
            // symmetric models. Truncation also makes distinct group
            // elements collapse onto identical rows, so rows are deduped
            // by their position list.
            const LEX_PREFIX: usize = 8;
            let mut lex_seq = 0u32;
            let mut seen_rows: BTreeSet<Vec<(VarId, VarId)>> = BTreeSet::new();
            // Branching priorities: a symlex row only prunes once its
            // leading positions are fixed (a 0-fix on the leading variable
            // forces the mirror variable to 0 through the dominant weight),
            // so pull branch-and-bound toward early positions. Each
            // variable keeps the strongest pull any row gives it.
            let mut prio: BTreeMap<VarId, f64> = BTreeMap::new();
            for g in &elems {
                let moved: Vec<usize> = (0..n).filter(|&v| g[v] != v).collect();
                if moved.is_empty() {
                    continue; // identity
                }
                let mut positions: Vec<(VarId, VarId)> = Vec::new();
                'outer: for &v in &moved {
                    positions.push((beta_vars[v], beta_vars[g[v]]));
                    for (mv, mg) in map_vars[v].iter().zip(&map_vars[g[v]]) {
                        if positions.len() >= LEX_PREFIX {
                            break 'outer;
                        }
                        positions.push((mv.1, mg.1));
                    }
                    if positions.len() >= LEX_PREFIX {
                        break;
                    }
                }
                if !seen_rows.insert(positions.clone()) {
                    continue;
                }
                let k = positions.len();
                let mut lhs = LinExpr::new();
                for (i, &(a, b)) in positions.iter().enumerate() {
                    let w = (1u64 << (k - 1 - i)) as f64;
                    lhs.add_term(a, w);
                    lhs.add_term(b, -w);
                    let pull = 1.0 + 8.0 * 0.5_f64.powi(i32::try_from(i).unwrap_or(i32::MAX));
                    for v in [a, b] {
                        let e = prio.entry(v).or_insert(1.0);
                        *e = (*e).max(pull);
                    }
                }
                model.add_constr(format!("symlex[{lex_seq}]"), lhs, Cmp::Ge, 0.0)?;
                lex_seq += 1;
                sym_rows += 1;
            }
            for (&v, &p) in &prio {
                model.set_branch_priority(v, p);
            }
            contrarc_obs::metrics::counter_add("sym.milp_rows", sym_rows);
        }
    }

    // --- flow contract C^F ---------------------------------------------------
    if flow {
        for (e, _, _) in t.candidate_edges() {
            // Flow only on selected edges.
            model.add_constr(
                format!("flow_gate[{}]", e.index()),
                LinExpr::var(flow_vars[e.index()])
                    - LinExpr::term(edge_vars[e.index()], spec.flow_cap),
                Cmp::Le,
                0.0,
            )?;
        }
        for n in t.node_ids() {
            let info = t.node(n);
            let in_flow: LinExpr =
                LinExpr::sum(t.graph().in_edges(n).map(|e| flow_vars[e.id.index()]));
            let out_flow: LinExpr =
                LinExpr::sum(t.graph().out_edges(n).map(|e| flow_vars[e.id.index()]));
            let in_count = t.graph().in_degree(n) as f64;
            let thr_cap = spec.flow_cap * in_count.max(1.0);

            // Throughput (assumption): Σ_in f ≤ Σ_x m·thr(x).
            let thr_sel = LinExpr::weighted_sum(
                map_vars[n.index()]
                    .iter()
                    .map(|&(x, v)| (v, clamped(lib.attr(x, attr::THROUGHPUT), thr_cap))),
            );
            if in_count > 0.0 {
                model.add_constr(
                    format!("throughput[{}]", info.name),
                    in_flow.clone() - thr_sel,
                    Cmp::Le,
                    0.0,
                )?;
            }

            // Conservation (guarantee): Σ_in f + gen ≥ Σ_out f + cons.
            let gen_sel = LinExpr::weighted_sum(
                map_vars[n.index()]
                    .iter()
                    .map(|&(x, v)| (v, clamped(lib.attr(x, attr::FLOW_GEN), spec.flow_cap))),
            );
            let cons_sel = LinExpr::weighted_sum(
                map_vars[n.index()]
                    .iter()
                    .map(|&(x, v)| (v, clamped(lib.attr(x, attr::FLOW_CONS), spec.flow_cap))),
            );
            model.add_constr(
                format!("conserve[{}]", info.name),
                in_flow + gen_sel - out_flow - cons_sel,
                Cmp::Ge,
                0.0,
            )?;
        }
    }

    // --- timing contract C^T -------------------------------------------------
    if timing {
        let big_t = 2.0 * spec.horizon;
        for n in t.node_ids() {
            let info = t.node(n);
            let jin_sel = LinExpr::weighted_sum(
                map_vars[n.index()]
                    .iter()
                    .map(|&(x, v)| (v, clamped(lib.attr(x, attr::JITTER_IN), big_t))),
            );
            let jout_sel = LinExpr::weighted_sum(
                map_vars[n.index()]
                    .iter()
                    .map(|&(x, v)| (v, clamped(lib.attr(x, attr::JITTER_OUT), big_t))),
            );
            let lat_sel = LinExpr::weighted_sum(
                map_vars[n.index()]
                    .iter()
                    .map(|&(x, v)| (v, clamped(lib.attr(x, attr::LATENCY), big_t))),
            );

            // Assumption: e_{a,i} → |t − τ| ≤ j_in.
            for e in t.graph().in_edges(n) {
                let ev = edge_vars[e.id.index()];
                let diff =
                    LinExpr::var(t_vars[e.id.index()]) - LinExpr::var(tau_vars[e.id.index()]);
                // diff − j_in ≤ M(1−e)  and  −diff − j_in ≤ M(1−e)
                model.add_constr(
                    format!("jin_hi[{},{}]", info.name, e.id.index()),
                    diff.clone() - jin_sel.clone() + LinExpr::term(ev, big_t),
                    Cmp::Le,
                    big_t,
                )?;
                model.add_constr(
                    format!("jin_lo[{},{}]", info.name, e.id.index()),
                    -diff - jin_sel.clone() + LinExpr::term(ev, big_t),
                    Cmp::Le,
                    big_t,
                )?;
            }
            // Guarantee: e_{i,b} → |t − τ| ≤ j_out.
            for e in t.graph().out_edges(n) {
                let ev = edge_vars[e.id.index()];
                let diff =
                    LinExpr::var(t_vars[e.id.index()]) - LinExpr::var(tau_vars[e.id.index()]);
                model.add_constr(
                    format!("jout_hi[{},{}]", info.name, e.id.index()),
                    diff.clone() - jout_sel.clone() + LinExpr::term(ev, big_t),
                    Cmp::Le,
                    big_t,
                )?;
                model.add_constr(
                    format!("jout_lo[{},{}]", info.name, e.id.index()),
                    -diff - jout_sel.clone() + LinExpr::term(ev, big_t),
                    Cmp::Le,
                    big_t,
                )?;
            }
            // Guarantee: e_{a,i} ∧ e_{i,b} → τ_out − t_in ≤ latency.
            for ein in t.graph().in_edges(n) {
                for eout in t.graph().out_edges(n) {
                    let ev_in = edge_vars[ein.id.index()];
                    let ev_out = edge_vars[eout.id.index()];
                    let lhs = LinExpr::var(tau_vars[eout.id.index()])
                        - LinExpr::var(t_vars[ein.id.index()])
                        - lat_sel.clone()
                        + LinExpr::term(ev_in, big_t)
                        + LinExpr::term(ev_out, big_t);
                    model.add_constr(
                        format!("lat[{},{},{}]", info.name, ein.id.index(), eout.id.index()),
                        lhs,
                        Cmp::Le,
                        2.0 * big_t,
                    )?;
                }
            }
        }
    }

    // --- objective ------------------------------------------------------------
    let mut cost = LinExpr::new();
    for n in t.node_ids() {
        let alpha = t.node(n).weight;
        for &(x, v) in &map_vars[n.index()] {
            cost.add_term(v, alpha * lib.attr(x, attr::COST));
        }
    }
    model.set_objective(Sense::Minimize, cost);

    Ok(Encoding {
        model,
        edge_vars,
        map_vars,
        beta_vars,
        flow_vars,
        tau_vars,
        t_vars,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::{Attrs, COST, FLOW_CONS, FLOW_GEN, LATENCY, THROUGHPUT};
    use crate::problem::{FlowSpec, SystemSpec, TimingSpec};
    use crate::template::{Template, TypeConfig};
    use crate::Library;
    use contrarc_milp::SolveOptions;

    /// Source → machine → sink chain with two machine impls.
    fn chain_problem() -> Problem {
        let mut t = Template::new("chain");
        let src_t = t.add_type("src", TypeConfig::source());
        let mach_t = t.add_type("mach", TypeConfig::bounded(2, 2));
        let sink_t = t.add_type("sink", TypeConfig::sink());
        let s = t.add_node("S", src_t);
        let m = t.add_node("M", mach_t);
        let k = t.add_required_node("K", sink_t);
        t.add_candidate_edge(s, m);
        t.add_candidate_edge(m, k);

        let mut lib = Library::new();
        lib.add(
            "S0",
            src_t,
            Attrs::new()
                .with(COST, 1.0)
                .with(FLOW_GEN, 10.0)
                .with(LATENCY, 1.0),
        );
        lib.add(
            "M_cheap",
            mach_t,
            Attrs::new()
                .with(COST, 2.0)
                .with(THROUGHPUT, 10.0)
                .with(LATENCY, 8.0),
        );
        lib.add(
            "M_fast",
            mach_t,
            Attrs::new()
                .with(COST, 6.0)
                .with(THROUGHPUT, 10.0)
                .with(LATENCY, 2.0),
        );
        lib.add(
            "K0",
            sink_t,
            Attrs::new()
                .with(COST, 1.0)
                .with(FLOW_CONS, 5.0)
                .with(LATENCY, 1.0),
        );

        let spec = SystemSpec {
            flow: Some(FlowSpec {
                max_supply: 100.0,
                max_consumption: 100.0,
            }),
            timing: Some(TimingSpec {
                max_latency: 20.0,
                max_input_jitter: 1.0,
                max_output_jitter: 1.0,
            }),
            flow_cap: 100.0,
            horizon: 100.0,
        };
        Problem::new(t, lib, spec)
    }

    #[test]
    fn encoding_has_expected_variables() {
        let p = chain_problem();
        let enc = encode_problem2(&p).unwrap();
        assert_eq!(enc.edge_vars.len(), 2);
        assert_eq!(enc.map_vars[1].len(), 2, "machine has two impls");
        assert_eq!(enc.beta_vars.len(), 3);
        assert_eq!(enc.flow_vars.len(), 2);
        assert_eq!(enc.tau_vars.len(), 2);
        let stats = enc.model.stats();
        // 2 edges + (1+2+1) maps + 3 betas binaries.
        assert_eq!(stats.num_binaries, 2 + 4 + 3);
    }

    #[test]
    fn solves_to_cheapest_functional_chain() {
        let p = chain_problem();
        let enc = encode_problem2(&p).unwrap();
        let sol = enc
            .model
            .solve(&SolveOptions::default())
            .unwrap()
            .expect_optimal()
            .unwrap();
        // Sink is required, so the whole chain must instantiate: S + M_cheap + K.
        assert!(
            (sol.objective() - 4.0).abs() < 1e-6,
            "objective {}",
            sol.objective()
        );
        for e in &enc.edge_vars {
            assert!(sol.is_set(*e), "both edges selected");
        }
        // The cheap machine is selected.
        let m_cheap = enc.map_vars[1][0].1;
        assert!(sol.is_set(m_cheap));
    }

    #[test]
    fn no_required_node_means_empty_architecture() {
        let mut p = chain_problem();
        let k = p
            .template
            .node_ids()
            .find(|&n| p.template.node(n).name == "K")
            .unwrap();
        p.template.set_required(k, false);
        let enc = encode_problem2(&p).unwrap();
        let sol = enc
            .model
            .solve(&SolveOptions::default())
            .unwrap()
            .expect_optimal()
            .unwrap();
        assert!(
            sol.objective().abs() < 1e-6,
            "empty architecture costs nothing"
        );
        for b in &enc.beta_vars {
            assert!(!sol.is_set(*b));
        }
    }

    #[test]
    fn throughput_limits_flow() {
        let mut p = chain_problem();
        // Shrink machine throughput below the sink demand: infeasible.
        let mach_t = p.template.type_by_name("mach").unwrap();
        let ids: Vec<_> = p.library.impls_of_type(mach_t).to_vec();
        for id in ids {
            // Rebuild impls with tiny throughput.
            let im = p.library.implementation(id).clone();
            let _ = im;
        }
        // Simpler: demand more than the source generates.
        let sink_t = p.template.type_by_name("sink").unwrap();
        let k_impl = p.library.impls_of_type(sink_t)[0];
        let mut im = p.library.implementation(k_impl).clone();
        im.attrs.set(FLOW_CONS, 50.0); // source only generates 10
                                       // Library has no mutate API by design; rebuild it.
        let mut lib2 = Library::new();
        for (id, old) in p.library.iter() {
            if id == k_impl {
                lib2.add(im.name.clone(), im.ty, im.attrs.clone());
            } else {
                lib2.add(old.name.clone(), old.ty, old.attrs.clone());
            }
        }
        p.library = lib2;
        let enc = encode_problem2(&p).unwrap();
        let out = enc.model.solve(&SolveOptions::default()).unwrap();
        assert!(
            !out.is_feasible(),
            "demand exceeding supply must be infeasible"
        );
    }

    #[test]
    fn fan_bounds_respected() {
        // Two sources feeding one machine with max_in = 1.
        let mut t = Template::new("fan");
        let src_t = t.add_type("src", TypeConfig::source());
        let mach_t = t.add_type("mach", TypeConfig::bounded(1, 2));
        let sink_t = t.add_type("sink", TypeConfig::sink());
        let s1 = t.add_node("S1", src_t);
        let s2 = t.add_node("S2", src_t);
        let m = t.add_node("M", mach_t);
        let k = t.add_required_node("K", sink_t);
        t.add_candidate_edge(s1, m);
        t.add_candidate_edge(s2, m);
        t.add_candidate_edge(m, k);

        let mut lib = Library::new();
        lib.add("S", src_t, Attrs::new().with(COST, 1.0).with(FLOW_GEN, 4.0));
        lib.add(
            "M",
            mach_t,
            Attrs::new().with(COST, 1.0).with(THROUGHPUT, 100.0),
        );
        lib.add(
            "K",
            sink_t,
            Attrs::new().with(COST, 1.0).with(FLOW_CONS, 6.0),
        );
        let spec = SystemSpec {
            flow: Some(FlowSpec {
                max_supply: 100.0,
                max_consumption: 100.0,
            }),
            timing: None,
            ..SystemSpec::default()
        };
        let p = Problem::new(t, lib, spec);
        let enc = encode_problem2(&p).unwrap();
        let out = enc.model.solve(&SolveOptions::default()).unwrap();
        // Demand 6 needs both sources (4 each), but max_in = 1 forbids it.
        assert!(!out.is_feasible());
    }

    #[test]
    fn symmetry_rows_preserve_optimum() {
        // Two identical parallel lines: the sym rows must prune permutations
        // without changing the optimal cost.
        let mut t = Template::new("twin");
        let src_t = t.add_type("src", TypeConfig::source());
        let mach_t = t.add_type("mach", TypeConfig::bounded(2, 2));
        let sink_t = t.add_type("sink", TypeConfig::sink());
        for side in ["A", "B"] {
            let s = t.add_node(format!("S{side}"), src_t);
            let m = t.add_node(format!("M{side}"), mach_t);
            let k = t.add_required_node(format!("K{side}"), sink_t);
            t.add_candidate_edge(s, m);
            t.add_candidate_edge(m, k);
        }
        let mut lib = Library::new();
        lib.add(
            "S",
            src_t,
            Attrs::new().with(COST, 1.0).with(FLOW_GEN, 10.0),
        );
        lib.add(
            "M",
            mach_t,
            Attrs::new().with(COST, 2.0).with(THROUGHPUT, 20.0),
        );
        lib.add(
            "K",
            sink_t,
            Attrs::new().with(COST, 1.0).with(FLOW_CONS, 5.0),
        );
        let spec = SystemSpec {
            flow: Some(FlowSpec {
                max_supply: 100.0,
                max_consumption: 100.0,
            }),
            timing: None,
            ..SystemSpec::default()
        };
        let p = Problem::new(t, lib, spec);

        let enc_on = encode_problem2(&p).unwrap();
        let enc_off = encode_problem2_sym(&p, &SymmetryConfig::off()).unwrap();
        assert!(
            enc_on.model.num_constrs() > enc_off.model.num_constrs(),
            "symmetric template must gain symmetry rows"
        );
        let cost_on = enc_on
            .model
            .solve(&SolveOptions::default())
            .unwrap()
            .expect_optimal()
            .unwrap()
            .objective();
        let cost_off = enc_off
            .model
            .solve(&SolveOptions::default())
            .unwrap()
            .expect_optimal()
            .unwrap()
            .objective();
        assert_eq!(
            cost_on.to_bits(),
            cost_off.to_bits(),
            "symmetry rows must preserve the optimum bit-for-bit"
        );
    }

    #[test]
    fn asymmetric_template_gets_no_symmetry_rows() {
        let p = chain_problem();
        let enc_on = encode_problem2(&p).unwrap();
        let enc_off = encode_problem2_sym(&p, &SymmetryConfig::off()).unwrap();
        assert_eq!(enc_on.model.num_constrs(), enc_off.model.num_constrs());
    }

    #[test]
    fn validation_errors_propagate() {
        let mut p = chain_problem();
        let ty = p.template.add_type("ghost", TypeConfig::default());
        p.template.add_node("G", ty);
        let err = encode_problem2(&p).unwrap_err();
        assert!(matches!(err, SolveError::InvalidModel(_)));
    }

    #[test]
    fn registry_lookups() {
        let p = chain_problem();
        let enc = encode_problem2(&p).unwrap();
        let n0 = p.template.node_ids().next().unwrap();
        let first_edge = p.template.candidate_edges().next().unwrap().0;
        let _ = enc.edge_var(first_edge);
        let _ = enc.beta_var(n0);
        let src_t = p.template.type_by_name("src").unwrap();
        let s_impl = p.library.impls_of_type(src_t)[0];
        assert!(enc.map_var(n0, s_impl).is_some());
        let mach_t = p.template.type_by_name("mach").unwrap();
        let m_impl = p.library.impls_of_type(mach_t)[0];
        assert!(enc.map_var(n0, m_impl).is_none(), "wrong type for node 0");
    }
}
