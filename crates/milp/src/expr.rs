//! Linear expressions over decision variables.

use crate::var::VarId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// A linear expression `Σ cᵢ·xᵢ + k`.
///
/// Expressions are built with ordinary arithmetic operators on [`VarId`]s,
/// `f64`s, and other expressions:
///
/// ```rust
/// use contrarc_milp::{LinExpr, Model};
/// let mut m = Model::new("ex");
/// let x = m.add_continuous("x", 0.0, 10.0);
/// let y = m.add_continuous("y", 0.0, 10.0);
/// let e: LinExpr = 2.0 * x - y + 3.0;
/// assert_eq!(e.coeff(x), 2.0);
/// assert_eq!(e.coeff(y), -1.0);
/// assert_eq!(e.constant(), 3.0);
/// ```
///
/// Terms with duplicate variables are merged and zero-coefficient terms are
/// dropped eagerly, so the representation is canonical: two expressions are
/// `==` iff they denote the same linear function.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct LinExpr {
    terms: BTreeMap<VarId, f64>,
    constant: f64,
}

impl LinExpr {
    /// The zero expression.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A constant expression with no variable terms.
    #[must_use]
    pub fn constant_expr(k: f64) -> Self {
        LinExpr {
            terms: BTreeMap::new(),
            constant: k,
        }
    }

    /// The expression `1·v`.
    #[must_use]
    pub fn var(v: VarId) -> Self {
        LinExpr::term(v, 1.0)
    }

    /// The expression `c·v`.
    #[must_use]
    pub fn term(v: VarId, c: f64) -> Self {
        let mut terms = BTreeMap::new();
        if c != 0.0 {
            terms.insert(v, c);
        }
        LinExpr {
            terms,
            constant: 0.0,
        }
    }

    /// Sum of `1·v` over an iterator of variables.
    ///
    /// ```rust
    /// use contrarc_milp::{LinExpr, Model};
    /// let mut m = Model::new("ex");
    /// let vars: Vec<_> = (0..3).map(|i| m.add_binary(format!("b{i}"))).collect();
    /// let s = LinExpr::sum(vars.iter().copied());
    /// assert_eq!(s.num_terms(), 3);
    /// ```
    #[must_use]
    pub fn sum<I: IntoIterator<Item = VarId>>(vars: I) -> Self {
        let mut e = LinExpr::new();
        for v in vars {
            e.add_term(v, 1.0);
        }
        e
    }

    /// Weighted sum `Σ cᵢ·vᵢ` over `(var, coeff)` pairs.
    #[must_use]
    pub fn weighted_sum<I: IntoIterator<Item = (VarId, f64)>>(pairs: I) -> Self {
        let mut e = LinExpr::new();
        for (v, c) in pairs {
            e.add_term(v, c);
        }
        e
    }

    /// Add `c·v` to the expression in place, merging with any existing term.
    pub fn add_term(&mut self, v: VarId, c: f64) {
        if c == 0.0 {
            return;
        }
        let entry = self.terms.entry(v).or_insert(0.0);
        *entry += c;
        if *entry == 0.0 {
            self.terms.remove(&v);
        }
    }

    /// Add a constant to the expression in place.
    pub fn add_constant(&mut self, k: f64) {
        self.constant += k;
    }

    /// Coefficient of `v` (zero if absent).
    #[must_use]
    pub fn coeff(&self, v: VarId) -> f64 {
        self.terms.get(&v).copied().unwrap_or(0.0)
    }

    /// The additive constant `k`.
    #[must_use]
    pub fn constant(&self) -> f64 {
        self.constant
    }

    /// Number of variables with nonzero coefficient.
    #[must_use]
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Whether the expression has no variable terms.
    #[must_use]
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterate over `(variable, coefficient)` pairs in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, f64)> + '_ {
        self.terms.iter().map(|(&v, &c)| (v, c))
    }

    /// Evaluate the expression under an assignment `values[v.index()]`.
    ///
    /// # Panics
    ///
    /// Panics if a variable index is out of range for `values`.
    #[must_use]
    pub fn eval(&self, values: &[f64]) -> f64 {
        self.constant + self.iter().map(|(v, c)| c * values[v.index()]).sum::<f64>()
    }

    /// Largest variable index mentioned, if any.
    #[must_use]
    pub fn max_var_index(&self) -> Option<usize> {
        self.terms.keys().next_back().map(|v| v.index())
    }
}

impl From<VarId> for LinExpr {
    fn from(v: VarId) -> Self {
        LinExpr::var(v)
    }
}

impl From<f64> for LinExpr {
    fn from(k: f64) -> Self {
        LinExpr::constant_expr(k)
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (v, c) in self.iter() {
            if first {
                if c == 1.0 {
                    write!(f, "{v}")?;
                } else if c == -1.0 {
                    write!(f, "-{v}")?;
                } else {
                    write!(f, "{c}·{v}")?;
                }
                first = false;
            } else if c >= 0.0 {
                if c == 1.0 {
                    write!(f, " + {v}")?;
                } else {
                    write!(f, " + {c}·{v}")?;
                }
            } else if c == -1.0 {
                write!(f, " - {v}")?;
            } else {
                write!(f, " - {}·{v}", -c)?;
            }
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if self.constant > 0.0 {
            write!(f, " + {}", self.constant)?;
        } else if self.constant < 0.0 {
            write!(f, " - {}", -self.constant)?;
        }
        Ok(())
    }
}

// ---- operator impls ------------------------------------------------------

macro_rules! impl_add_like {
    ($lhs:ty, $rhs:ty) => {
        impl Add<$rhs> for $lhs {
            type Output = LinExpr;
            fn add(self, rhs: $rhs) -> LinExpr {
                let mut out = LinExpr::from(self);
                out += LinExpr::from(rhs);
                out
            }
        }
        impl Sub<$rhs> for $lhs {
            type Output = LinExpr;
            fn sub(self, rhs: $rhs) -> LinExpr {
                let mut out = LinExpr::from(self);
                out -= LinExpr::from(rhs);
                out
            }
        }
    };
}

impl_add_like!(LinExpr, LinExpr);
impl_add_like!(LinExpr, VarId);
impl_add_like!(LinExpr, f64);
impl_add_like!(VarId, LinExpr);
impl_add_like!(VarId, VarId);
impl_add_like!(VarId, f64);
impl_add_like!(f64, LinExpr);
impl_add_like!(f64, VarId);

impl AddAssign<LinExpr> for LinExpr {
    fn add_assign(&mut self, rhs: LinExpr) {
        for (v, c) in rhs.iter() {
            self.add_term(v, c);
        }
        self.constant += rhs.constant;
    }
}

impl SubAssign<LinExpr> for LinExpr {
    fn sub_assign(&mut self, rhs: LinExpr) {
        for (v, c) in rhs.iter() {
            self.add_term(v, -c);
        }
        self.constant -= rhs.constant;
    }
}

impl Neg for LinExpr {
    type Output = LinExpr;
    fn neg(self) -> LinExpr {
        let mut out = LinExpr::new();
        for (v, c) in self.iter() {
            out.add_term(v, -c);
        }
        out.constant = -self.constant;
        out
    }
}

impl Mul<f64> for LinExpr {
    type Output = LinExpr;
    fn mul(self, k: f64) -> LinExpr {
        let mut out = LinExpr::new();
        if k != 0.0 {
            for (v, c) in self.iter() {
                out.add_term(v, c * k);
            }
            out.constant = self.constant * k;
        }
        out
    }
}

impl Mul<LinExpr> for f64 {
    type Output = LinExpr;
    fn mul(self, e: LinExpr) -> LinExpr {
        e * self
    }
}

impl Mul<VarId> for f64 {
    type Output = LinExpr;
    fn mul(self, v: VarId) -> LinExpr {
        LinExpr::term(v, self)
    }
}

impl Mul<f64> for VarId {
    type Output = LinExpr;
    fn mul(self, k: f64) -> LinExpr {
        LinExpr::term(self, k)
    }
}

impl std::iter::Sum for LinExpr {
    fn sum<I: Iterator<Item = LinExpr>>(iter: I) -> LinExpr {
        let mut acc = LinExpr::new();
        for e in iter {
            acc += e;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> VarId {
        VarId::from_index(i)
    }

    #[test]
    fn canonical_merging() {
        let e = LinExpr::var(v(0)) + v(0) + v(1) - v(1);
        assert_eq!(e.coeff(v(0)), 2.0);
        assert_eq!(e.coeff(v(1)), 0.0);
        assert_eq!(e.num_terms(), 1);
    }

    #[test]
    fn zero_coeff_dropped() {
        let e = LinExpr::term(v(3), 0.0);
        assert!(e.is_constant());
    }

    #[test]
    fn operators_compose() {
        let e = 2.0 * v(0) - 0.5 * v(1) + 7.0;
        assert_eq!(e.coeff(v(0)), 2.0);
        assert_eq!(e.coeff(v(1)), -0.5);
        assert_eq!(e.constant(), 7.0);
    }

    #[test]
    fn neg_and_mul() {
        let e = -(1.0 * v(0) + 2.0);
        assert_eq!(e.coeff(v(0)), -1.0);
        assert_eq!(e.constant(), -2.0);
        let e2 = e * 3.0;
        assert_eq!(e2.coeff(v(0)), -3.0);
        assert_eq!(e2.constant(), -6.0);
    }

    #[test]
    fn mul_by_zero_clears() {
        let e = (2.0 * v(0) + 5.0) * 0.0;
        assert_eq!(e, LinExpr::new());
    }

    #[test]
    fn eval_matches_terms() {
        let e = 2.0 * v(0) + 3.0 * v(2) + 1.0;
        let values = [1.0, 99.0, 2.0];
        assert_eq!(e.eval(&values), 2.0 + 6.0 + 1.0);
    }

    #[test]
    fn sum_builders() {
        let e = LinExpr::sum([v(0), v(1), v(0)]);
        assert_eq!(e.coeff(v(0)), 2.0);
        let w = LinExpr::weighted_sum([(v(0), 1.5), (v(1), -1.5)]);
        assert_eq!(w.coeff(v(1)), -1.5);
    }

    #[test]
    fn display_readable() {
        let e = 1.0 * v(0) - 1.0 * v(1) + 2.5 * v(2) - 4.0;
        assert_eq!(e.to_string(), "x0 - x1 + 2.5·x2 - 4");
        assert_eq!(LinExpr::constant_expr(0.0).to_string(), "0");
    }

    #[test]
    fn iter_sum_collects() {
        let total: LinExpr = (0..3).map(|i| LinExpr::term(v(i), i as f64 + 1.0)).sum();
        assert_eq!(total.coeff(v(2)), 3.0);
    }

    #[test]
    fn equality_is_semantic() {
        let a = 1.0 * v(0) + 2.0 * v(1);
        let b = 2.0 * v(1) + 1.0 * v(0);
        assert_eq!(a, b);
    }
}
