//! Sink implementations: no-op, JSONL, collapsed-stack (flamegraph), stderr
//! pretty-printer, and an in-memory buffer for tests.

use crate::json::escape_into;
use crate::{Event, EventKind, Sink, Value};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;
use std::sync::{Mutex, PoisonError};

/// The default sink: discards everything. Installing it advertises
/// `wants_events() == false`, so the process keeps the disabled fast path —
/// instrumentation sites cost one atomic load and never build an [`Event`].
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl Sink for NoopSink {
    fn record(&self, _event: &Event) {}
    fn wants_events(&self) -> bool {
        false
    }
}

fn push_value_json(out: &mut String, value: &Value) {
    match value {
        Value::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Value::I64(v) => {
            let _ = write!(out, "{v}");
        }
        Value::F64(v) if v.is_finite() => {
            let _ = write!(out, "{v}");
        }
        Value::F64(_) => out.push_str("null"),
        Value::Bool(v) => {
            let _ = write!(out, "{v}");
        }
        Value::Str(s) => escape_into(out, s),
    }
}

/// Render one event as a single JSONL line (no trailing newline). The field
/// order is stable: `ev`, `t_us`, `span`, `parent`, `thread`, `name`,
/// `dur_us` (close only), `fields`.
#[must_use]
pub fn event_to_jsonl(event: &Event) -> String {
    let mut out = String::with_capacity(128);
    out.push_str("{\"ev\":\"");
    out.push_str(event.kind.wire_name());
    let _ = write!(
        out,
        "\",\"t_us\":{},\"span\":{},\"parent\":{},\"thread\":",
        event.t_us, event.span, event.parent
    );
    escape_into(&mut out, &event.thread);
    out.push_str(",\"name\":");
    escape_into(&mut out, event.name);
    if let Some(dur) = event.dur_us {
        let _ = write!(out, ",\"dur_us\":{dur}");
    }
    out.push_str(",\"fields\":{");
    for (i, (key, value)) in event.fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        escape_into(&mut out, key);
        out.push(':');
        push_value_json(&mut out, value);
    }
    out.push_str("}}");
    out
}

/// Writes one JSON object per event to a writer. Each line is written (and
/// flushed) atomically under a lock, so concurrent threads never interleave
/// within a line and an abrupt process exit loses at most nothing. Write
/// errors are swallowed: diagnostics must never steer the computation.
pub struct JsonlSink {
    writer: Mutex<Box<dyn std::io::Write + Send>>,
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("JsonlSink")
    }
}

impl JsonlSink {
    /// Wrap an arbitrary writer.
    #[must_use]
    pub fn new(writer: Box<dyn std::io::Write + Send>) -> Self {
        JsonlSink {
            writer: Mutex::new(writer),
        }
    }

    /// Create (truncate) `path` and write the trace there.
    ///
    /// # Errors
    ///
    /// Propagates file-creation failures.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        Ok(Self::new(Box::new(std::fs::File::create(path)?)))
    }
}

impl Sink for JsonlSink {
    fn record(&self, event: &Event) {
        let mut line = event_to_jsonl(event);
        line.push('\n');
        let mut w = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        let _ = w.write_all(line.as_bytes());
    }

    fn flush(&self) {
        let mut w = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        let _ = w.flush();
    }
}

#[derive(Default)]
struct FoldedState {
    /// span id -> (name, parent, thread label) for every span seen opening.
    open: HashMap<u64, (&'static str, u64, String)>,
    /// span id -> accumulated child wall-clock (µs), for self-time.
    child_us: HashMap<u64, u64>,
    /// folded stack -> accumulated self-time (µs).
    folded: std::collections::BTreeMap<String, u64>,
}

/// Aggregates span durations into flamegraph.pl-compatible collapsed stacks:
/// one `thread;outer;inner NNN` line per unique stack, weighted by *self*
/// time in microseconds (children's wall-clock is subtracted from the
/// parent's). Pull the result with [`CollapsedStackSink::folded`] after the
/// run.
#[derive(Default)]
pub struct CollapsedStackSink {
    state: Mutex<FoldedState>,
}

impl std::fmt::Debug for CollapsedStackSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("CollapsedStackSink")
    }
}

impl CollapsedStackSink {
    /// The collapsed stacks accumulated so far, one `stack count` line each,
    /// sorted by stack. Frames are separated by `;` with the thread label as
    /// the root frame; counts are self-time microseconds.
    #[must_use]
    pub fn folded(&self) -> String {
        let state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        let mut out = String::new();
        for (stack, us) in &state.folded {
            let _ = writeln!(out, "{stack} {us}");
        }
        out
    }
}

impl Sink for CollapsedStackSink {
    fn record(&self, event: &Event) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        match event.kind {
            EventKind::SpanOpen => {
                state.open.insert(
                    event.span,
                    (event.name, event.parent, event.thread.to_string()),
                );
            }
            EventKind::SpanClose => {
                let dur = event.dur_us.unwrap_or(0);
                let children = state.child_us.remove(&event.span).unwrap_or(0);
                let self_us = dur.saturating_sub(children);
                if event.parent != 0 {
                    *state.child_us.entry(event.parent).or_insert(0) += dur;
                }
                // Reconstruct the stack from still-open ancestors. A parent
                // chain crossing threads (fan-out) is walked transparently.
                let mut frames = vec![event.name.to_owned()];
                let mut cursor = event.parent;
                while cursor != 0 {
                    match state.open.get(&cursor) {
                        Some((name, parent, _)) => {
                            frames.push((*name).to_owned());
                            cursor = *parent;
                        }
                        None => break,
                    }
                }
                frames.push(event.thread.to_string());
                frames.reverse();
                let stack = frames.join(";");
                if self_us > 0 {
                    *state.folded.entry(stack).or_insert(0) += self_us;
                }
                state.open.remove(&event.span);
            }
            EventKind::Instant => {}
        }
    }
}

/// Human progress lines on stderr: prints instant events as
/// `[  12.345s] name key=value …` and ignores span traffic, so stdout stays
/// machine-parseable while stderr carries progress.
#[derive(Debug, Default, Clone, Copy)]
pub struct StderrPrettySink;

impl Sink for StderrPrettySink {
    fn record(&self, event: &Event) {
        if event.kind != EventKind::Instant {
            return;
        }
        let mut line = String::with_capacity(96);
        let secs = event.t_us as f64 / 1e6;
        let _ = write!(line, "[{secs:>9.3}s] {}", event.name);
        for (key, value) in &event.fields {
            let _ = write!(line, " {key}={value}");
        }
        eprintln!("{line}");
    }
}

/// Buffers every event in memory — for tests.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// A copy of everything recorded so far, in delivery order.
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }
}

impl Sink for MemorySink {
    fn record(&self, event: &Event) {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate_trace_line;
    use std::sync::Arc;

    fn sample(kind: EventKind, span: u64, dur: Option<u64>) -> Event {
        Event {
            kind,
            name: "phase.sub",
            span,
            parent: 0,
            thread: Arc::from("main"),
            t_us: 7,
            dur_us: dur,
            fields: vec![
                ("n", Value::U64(3)),
                ("cost", Value::F64(1.5)),
                ("label", Value::Str("a\"b".to_owned())),
                ("ok", Value::Bool(true)),
            ],
        }
    }

    #[test]
    fn jsonl_lines_validate_against_schema() {
        for (kind, span, dur) in [
            (EventKind::SpanOpen, 4, None),
            (EventKind::SpanClose, 4, Some(11)),
            (EventKind::Instant, 0, None),
        ] {
            let line = event_to_jsonl(&sample(kind, span, dur));
            validate_trace_line(&line).unwrap_or_else(|e| panic!("{e}: {line}"));
        }
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut e = sample(EventKind::Instant, 0, None);
        e.fields = vec![("bad", Value::F64(f64::NAN))];
        let line = event_to_jsonl(&e);
        assert!(line.contains("\"bad\":null"), "{line}");
        validate_trace_line(&line).unwrap();
    }

    #[test]
    fn collapsed_stacks_subtract_child_time() {
        let sink = CollapsedStackSink::default();
        let thread: Arc<str> = Arc::from("main");
        let ev = |kind, name: &'static str, span, parent, dur_us| Event {
            kind,
            name,
            span,
            parent,
            thread: Arc::clone(&thread),
            t_us: 0,
            dur_us,
            fields: vec![],
        };
        sink.record(&ev(EventKind::SpanOpen, "outer", 1, 0, None));
        sink.record(&ev(EventKind::SpanOpen, "inner", 2, 1, None));
        sink.record(&ev(EventKind::SpanClose, "inner", 2, 1, Some(30)));
        sink.record(&ev(EventKind::SpanClose, "outer", 1, 0, Some(100)));
        let folded = sink.folded();
        let mut lines: Vec<&str> = folded.lines().collect();
        lines.sort_unstable();
        assert_eq!(lines, vec!["main;outer 70", "main;outer;inner 30"]);
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let buf: Arc<Mutex<Vec<u8>>> = Arc::default();
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl std::io::Write for Shared {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let sink = JsonlSink::new(Box::new(Shared(Arc::clone(&buf))));
        sink.record(&sample(EventKind::SpanOpen, 1, None));
        sink.record(&sample(EventKind::SpanClose, 1, Some(2)));
        sink.flush();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            validate_trace_line(line).unwrap();
        }
    }
}
