//! Validates a `CONTRARC_TRACE` JSONL trace file: every line must satisfy
//! the wire schema (see `contrarc_obs::json::validate_trace_line`) and the
//! span lifecycle must be consistent — each close matches a prior open with
//! the same span id and name, span ids are never reused, and every span is
//! closed by the end of the trace.
//!
//! Usage: `trace_check <trace.jsonl>`; exits non-zero naming the first
//! offending line. CI runs this against the trace produced by the RPL
//! example to keep the schema honest.

use contrarc_obs::json::validate_trace_line;
use std::collections::{BTreeSet, HashMap};
use std::process::ExitCode;

fn check(text: &str) -> Result<String, String> {
    // span id -> name, for spans currently open.
    let mut open: HashMap<u64, String> = HashMap::new();
    let mut seen_ids: BTreeSet<u64> = BTreeSet::new();
    let mut threads: BTreeSet<String> = BTreeSet::new();
    let (mut opens, mut closes, mut instants) = (0u64, 0u64, 0u64);
    for (i, line) in text.lines().enumerate() {
        let ln = i + 1;
        let rec = validate_trace_line(line).map_err(|e| format!("line {ln}: {e}"))?;
        threads.insert(rec.thread.clone());
        match rec.ev.as_str() {
            "open" => {
                opens += 1;
                if !seen_ids.insert(rec.span) {
                    return Err(format!("line {ln}: span id {} reused", rec.span));
                }
                open.insert(rec.span, rec.name.clone());
            }
            "close" => {
                closes += 1;
                match open.remove(&rec.span) {
                    Some(name) if name == rec.name => {}
                    Some(name) => {
                        return Err(format!(
                            "line {ln}: span {} closes as '{}' but opened as '{name}'",
                            rec.span, rec.name
                        ));
                    }
                    None => {
                        return Err(format!(
                            "line {ln}: close for span {} without a matching open",
                            rec.span
                        ));
                    }
                }
            }
            "instant" => instants += 1,
            other => return Err(format!("line {ln}: unknown event kind '{other}'")),
        }
    }
    if !open.is_empty() {
        let mut ids: Vec<u64> = open.keys().copied().collect();
        ids.sort_unstable();
        return Err(format!("{} span(s) never closed (ids {ids:?})", open.len()));
    }
    Ok(format!(
        "{} events ({opens} opens, {closes} closes, {instants} instants) \
         across {} thread(s); all spans balanced",
        opens + closes + instants,
        threads.len()
    ))
}

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: trace_check <trace.jsonl>");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace_check: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match check(&text) {
        Ok(summary) => {
            println!("trace_check: {path}: {summary}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("trace_check: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}
