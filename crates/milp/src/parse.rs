//! Parse models from the (CPLEX-style) LP text format written by
//! [`export::to_lp_format`](crate::export::to_lp_format) — round-tripping
//! models for debugging and for importing instances produced by external
//! tools.
//!
//! The supported grammar is the practical core of the LP format:
//! `Minimize`/`Maximize`, one objective row, `Subject To` with `<= >= =`
//! rows, `Bounds` (including `free`), `Binaries`/`Generals`, `End`, and
//! `\`-comments. Variable names are free-form identifiers.

use crate::constraint::Cmp;
use crate::error::SolveError;
use crate::expr::LinExpr;
use crate::model::{Model, Sense};
use crate::var::{VarDef, VarId, VarType};
use std::collections::HashMap;

/// Parse an LP-format document into a [`Model`].
///
/// Variables get `[0, ∞)` continuous defaults (the LP-format convention)
/// until a `Bounds`/`Binaries`/`Generals` section says otherwise.
///
/// # Errors
///
/// Returns [`SolveError::InvalidModel`] with a line-tagged message on any
/// syntax the subset does not understand.
///
/// # Examples
///
/// ```rust
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let text = "\
/// Maximize
///  obj: 3 x + 4 y
/// Subject To
///  c1: x + 2 y <= 14
/// Bounds
///  x free
/// End
/// ";
/// let model = contrarc_milp::parse::from_lp_format(text)?;
/// assert_eq!(model.num_vars(), 2);
/// assert_eq!(model.num_constrs(), 1);
/// # Ok(())
/// # }
/// ```
pub fn from_lp_format(text: &str) -> Result<Model, SolveError> {
    let mut parser = Parser::new();
    parser.run(text)?;
    parser.finish()
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    Preamble,
    Objective(Sense),
    Constraints,
    Bounds,
    Binaries,
    Generals,
    Done,
}

struct Parser {
    model: Model,
    vars: HashMap<String, VarId>,
    section: Section,
    /// Objective text accumulates across lines until `Subject To`.
    objective_src: String,
    objective_sense: Sense,
    /// Constraint text accumulates until a comparison is complete.
    pending: String,
    /// Deferred variable-type changes, applied when the model is rebuilt in
    /// [`Parser::finish`] (variable types are immutable in `Model`).
    type_patches: Vec<(VarId, VarType, String)>,
}

impl Parser {
    fn new() -> Self {
        Parser {
            model: Model::new("lp-import"),
            vars: HashMap::new(),
            section: Section::Preamble,
            objective_src: String::new(),
            objective_sense: Sense::Minimize,
            pending: String::new(),
            type_patches: Vec::new(),
        }
    }

    fn run(&mut self, text: &str) -> Result<(), SolveError> {
        for (lineno, raw) in text.lines().enumerate() {
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            self.line(line, lineno + 1)?;
        }
        Ok(())
    }

    fn line(&mut self, line: &str, no: usize) -> Result<(), SolveError> {
        let lower = line.to_ascii_lowercase();
        // Section headers.
        let new_section = match lower.as_str() {
            "minimize" | "min" => Some(Section::Objective(Sense::Minimize)),
            "maximize" | "max" => Some(Section::Objective(Sense::Maximize)),
            "subject to" | "st" | "s.t." | "such that" => Some(Section::Constraints),
            "bounds" => Some(Section::Bounds),
            "binaries" | "binary" | "bin" => Some(Section::Binaries),
            "generals" | "general" | "gen" => Some(Section::Generals),
            "end" => Some(Section::Done),
            _ => None,
        };
        if let Some(s) = new_section {
            self.flush_pending(no)?;
            if let Section::Objective(sense) = s {
                self.objective_sense = sense;
            }
            self.section = s;
            return Ok(());
        }

        match self.section {
            Section::Preamble => Err(err(no, "expected a Minimize/Maximize header")),
            Section::Done => Err(err(no, "content after End")),
            Section::Objective(_) => {
                self.objective_src.push(' ');
                self.objective_src.push_str(line);
                Ok(())
            }
            Section::Constraints => {
                self.pending.push(' ');
                self.pending.push_str(line);
                // A constraint is complete once it contains a comparison and
                // ends in a number.
                if contains_cmp(&self.pending) && ends_numeric(&self.pending) {
                    self.flush_pending(no)?;
                }
                Ok(())
            }
            Section::Bounds => self.parse_bound(line, no),
            Section::Binaries => {
                for name in line.split_whitespace() {
                    let v = self.var(name);
                    self.set_var_type(v, VarType::Binary, 0.0, 1.0);
                }
                Ok(())
            }
            Section::Generals => {
                for name in line.split_whitespace() {
                    let v = self.var(name);
                    let (lb, ub) = {
                        let d = self.model.var(v);
                        (d.lb, d.ub)
                    };
                    self.set_var_type(v, VarType::Integer, lb, ub);
                }
                Ok(())
            }
        }
    }

    fn flush_pending(&mut self, no: usize) -> Result<(), SolveError> {
        if self.pending.trim().is_empty() {
            return Ok(());
        }
        let text = std::mem::take(&mut self.pending);
        let (label, rest) = split_label(&text);
        let (lhs_src, cmp, rhs_src) = split_cmp(rest).ok_or_else(|| {
            err(
                no,
                &format!("constraint without a comparison: `{}`", rest.trim()),
            )
        })?;
        let lhs = self.parse_expr(lhs_src, no)?;
        let rhs: f64 = rhs_src
            .trim()
            .parse()
            .map_err(|_| err(no, &format!("bad rhs `{}`", rhs_src.trim())))?;
        let name = label.unwrap_or_else(|| format!("row{}", self.model.num_constrs()));
        self.model.add_constr(name, lhs, cmp, rhs)?;
        Ok(())
    }

    fn parse_bound(&mut self, line: &str, no: usize) -> Result<(), SolveError> {
        let tokens: Vec<&str> = line.split_whitespace().collect();
        // `x free`
        if let [name, kw] = tokens.as_slice() {
            if kw.eq_ignore_ascii_case("free") {
                let v = self.var(name);
                self.set_bounds_keep_type(v, f64::NEG_INFINITY, f64::INFINITY);
                return Ok(());
            }
        }
        // `lo <= x <= hi` | `x <= hi` | `x >= lo`
        let text = line.replace("<=", " <= ").replace(">=", " >= ");
        let parts: Vec<&str> = text.split_whitespace().collect();
        match parts.as_slice() {
            [lo, "<=", name, "<=", hi] => {
                let v = self.var(name);
                let lo = parse_bound_value(lo, no)?;
                let hi = parse_bound_value(hi, no)?;
                self.set_bounds_keep_type(v, lo, hi);
                Ok(())
            }
            [name, "<=", hi] => {
                let v = self.var(name);
                let hi = parse_bound_value(hi, no)?;
                let lb = self.model.var(v).lb;
                self.set_bounds_keep_type(v, lb, hi);
                Ok(())
            }
            [name, ">=", lo] => {
                let v = self.var(name);
                let lo = parse_bound_value(lo, no)?;
                let ub = self.model.var(v).ub;
                self.set_bounds_keep_type(v, lo, ub);
                Ok(())
            }
            _ => Err(err(no, &format!("unsupported bound syntax `{line}`"))),
        }
    }

    /// Parse a linear expression like `3 x - 4.5 y + z`.
    fn parse_expr(&mut self, src: &str, no: usize) -> Result<LinExpr, SolveError> {
        let mut expr = LinExpr::new();
        let mut sign = 1.0;
        let mut coeff: Option<f64> = None;
        for token in tokenize(src) {
            match token.as_str() {
                "+" => {
                    self.push_dangling(&mut expr, &mut coeff, sign);
                    sign = 1.0;
                }
                "-" => {
                    self.push_dangling(&mut expr, &mut coeff, sign);
                    sign = -1.0;
                }
                t => {
                    if let Ok(v) = t.parse::<f64>() {
                        coeff = Some(coeff.unwrap_or(1.0) * v);
                    } else {
                        let var = self.var(t);
                        expr.add_term(var, sign * coeff.take().unwrap_or(1.0));
                        sign = 1.0;
                    }
                }
            }
        }
        self.push_dangling(&mut expr, &mut coeff, sign);
        let _ = no;
        Ok(expr)
    }

    /// A trailing bare number is an additive constant.
    fn push_dangling(&mut self, expr: &mut LinExpr, coeff: &mut Option<f64>, sign: f64) {
        if let Some(c) = coeff.take() {
            expr.add_constant(sign * c);
        }
    }

    fn var(&mut self, name: &str) -> VarId {
        if let Some(&v) = self.vars.get(name) {
            return v;
        }
        let v = self
            .model
            .add_var(VarDef::new(name, VarType::Continuous, 0.0, f64::INFINITY));
        self.vars.insert(name.to_string(), v);
        v
    }

    /// Replace a variable's definition (type/bounds), keeping its identity.
    fn set_var_type(&mut self, v: VarId, ty: VarType, lb: f64, ub: f64) {
        let name = self.model.var_name(v).to_string();
        self.type_patches.push((v, ty, name));
        let _ = self.model.set_bounds(v, lb, ub);
    }

    fn set_bounds_keep_type(&mut self, v: VarId, lb: f64, ub: f64) {
        let _ = self.model.set_bounds(v, lb, ub);
    }

    fn finish(mut self) -> Result<Model, SolveError> {
        self.flush_pending(0)?;
        let objective_src = std::mem::take(&mut self.objective_src);
        let (_, rest) = split_label(&objective_src);
        let obj = self.parse_expr(rest, 0)?;
        let sense = self.objective_sense;

        // Apply type patches by rebuilding the model (VarDef types are
        // immutable through the public API).
        let mut rebuilt = Model::new("lp-import");
        for (v, d) in self.model.vars() {
            let ty = self
                .type_patches
                .iter()
                .rev()
                .find(|(pv, _, _)| *pv == v)
                .map_or(d.ty, |(_, t, _)| *t);
            rebuilt.add_var(VarDef::new(d.name.clone(), ty, d.lb, d.ub));
        }
        for c in self.model.constrs() {
            rebuilt.add_constraint(c.clone())?;
        }
        rebuilt.set_objective(sense, obj);
        Ok(rebuilt)
    }
}

fn err(line: usize, msg: &str) -> SolveError {
    SolveError::InvalidModel(format!("LP parse error (line {line}): {msg}"))
}

fn strip_comment(line: &str) -> &str {
    match line.find('\\') {
        Some(i) => &line[..i],
        None => line,
    }
}

fn split_label(text: &str) -> (Option<String>, &str) {
    if let Some(colon) = text.find(':') {
        let (label, rest) = text.split_at(colon);
        (Some(label.trim().to_string()), &rest[1..])
    } else {
        (None, text)
    }
}

fn contains_cmp(s: &str) -> bool {
    s.contains("<=") || s.contains(">=") || s.contains('=')
}

fn ends_numeric(s: &str) -> bool {
    s.trim()
        .rsplit(|c: char| c.is_whitespace() || c == '=' || c == '<' || c == '>')
        .next()
        .is_some_and(|t| t.parse::<f64>().is_ok())
}

fn split_cmp(text: &str) -> Option<(&str, Cmp, &str)> {
    for (pat, cmp) in [("<=", Cmp::Le), (">=", Cmp::Ge), ("=", Cmp::Eq)] {
        if let Some(i) = text.find(pat) {
            return Some((&text[..i], cmp, &text[i + pat.len()..]));
        }
    }
    None
}

fn tokenize(src: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for ch in src.chars() {
        match ch {
            '+' | '-' => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
                out.push(ch.to_string());
            }
            c if c.is_whitespace() => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
            }
            c => cur.push(c),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn parse_bound_value(s: &str, no: usize) -> Result<f64, SolveError> {
    match s.to_ascii_lowercase().as_str() {
        "-inf" | "-infinity" => Ok(f64::NEG_INFINITY),
        "inf" | "+inf" | "infinity" => Ok(f64::INFINITY),
        t => t.parse().map_err(|_| err(no, &format!("bad bound `{s}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::to_lp_format;
    use crate::{Cmp, SolveOptions};

    #[test]
    fn parse_simple_lp() {
        let text = "\
Maximize
 obj: 3 x + 4 y
Subject To
 c1: x + 2 y <= 14
 c2: 3 x - y >= 0
 c3: x - y <= 2
End
";
        let m = from_lp_format(text).unwrap();
        assert_eq!(m.num_vars(), 2);
        assert_eq!(m.num_constrs(), 3);
        let sol = m
            .solve(&SolveOptions::default())
            .unwrap()
            .expect_optimal()
            .unwrap();
        assert!((sol.objective() - 34.0).abs() < 1e-6);
    }

    #[test]
    fn parse_sections_and_types() {
        let text = "\
Minimize
 obj: x + y + z
Subject To
 c: x + y + z >= 2
Bounds
 0 <= y <= 5
 z free
Binaries
 x
End
";
        let m = from_lp_format(text).unwrap();
        assert_eq!(m.var(VarId::from_index(0)).ty, VarType::Binary);
        assert_eq!(m.var(VarId::from_index(1)).ub, 5.0);
        assert_eq!(m.var(VarId::from_index(2)).lb, f64::NEG_INFINITY);
    }

    #[test]
    fn roundtrip_through_export() {
        let mut m = Model::new("rt");
        let a = m.add_binary("a");
        let b = m.add_integer("b", -2.0, 7.0);
        let c = m.add_continuous("c", 0.0, 3.5);
        m.add_constr("k1", 2.0 * a + 1.0 * b - 0.5 * c, Cmp::Le, 6.0)
            .unwrap();
        m.add_constr("k2", 1.0 * b + 1.0 * c, Cmp::Ge, 1.0).unwrap();
        m.set_objective(crate::Sense::Maximize, 3.0 * a + 1.0 * b + 0.25 * c);

        let text = to_lp_format(&m);
        let back = from_lp_format(&text).unwrap();
        assert_eq!(back.num_vars(), m.num_vars());
        assert_eq!(back.num_constrs(), m.num_constrs());
        let s1 = m
            .solve(&SolveOptions::default())
            .unwrap()
            .expect_optimal()
            .unwrap();
        let s2 = back
            .solve(&SolveOptions::default())
            .unwrap()
            .expect_optimal()
            .unwrap();
        assert!(
            (s1.objective() - s2.objective()).abs() < 1e-6,
            "{} vs {}",
            s1.objective(),
            s2.objective()
        );
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\
\\ a header comment
Minimize
 obj: x

Subject To
 c: x >= 3 \\ trailing comment
End
";
        let m = from_lp_format(text).unwrap();
        let sol = m
            .solve(&SolveOptions::default())
            .unwrap()
            .expect_optimal()
            .unwrap();
        assert!((sol.objective() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn errors_are_line_tagged() {
        let e = from_lp_format("garbage before headers\nMinimize\n").unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("line 1"), "{msg}");
    }

    #[test]
    fn implicit_coefficients_and_constants() {
        let text = "\
Minimize
 obj: x + 2
Subject To
 c: 2 x >= 4
End
";
        let m = from_lp_format(text).unwrap();
        let sol = m
            .solve(&SolveOptions::default())
            .unwrap()
            .expect_optimal()
            .unwrap();
        assert!((sol.objective() - 4.0).abs() < 1e-9, "x=2 plus constant 2");
    }
}
