//! Arena-style directed graph with typed node and edge weights.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Opaque handle to a node of a [`DiGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Dense index of this node (insertion order, starting at zero).
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuild a `NodeId` from a dense index. Only valid for the graph that
    /// issued it.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index overflow"))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Opaque handle to an edge of a [`DiGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId(pub(crate) u32);

impl EdgeId {
    /// Dense index of this edge (insertion order, starting at zero).
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuild an `EdgeId` from a dense index. Only valid for the graph that
    /// issued it.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        EdgeId(u32::try_from(index).expect("edge index overflow"))
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct EdgeData<E> {
    src: NodeId,
    dst: NodeId,
    weight: E,
}

// Manual impls: `EdgeRef` only holds a reference to `E`, so it is copyable
// regardless of whether `E` is (derive would add a spurious `E: Copy` bound).
impl<E> Clone for EdgeRef<'_, E> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<E> Copy for EdgeRef<'_, E> {}

/// A borrowed view of one edge: `(id, source, target, &weight)`.
#[derive(Debug, PartialEq)]
pub struct EdgeRef<'a, E> {
    /// Edge handle.
    pub id: EdgeId,
    /// Source node.
    pub src: NodeId,
    /// Target node.
    pub dst: NodeId,
    /// Edge weight.
    pub weight: &'a E,
}

/// A directed multigraph with node weights `N` and edge weights `E`.
///
/// Nodes and edges are never removed (the exploration workloads only build
/// graphs), which keeps ids stable and the representation compact.
///
/// ```rust
/// use contrarc_graph::DiGraph;
/// let mut g = DiGraph::new();
/// let a = g.add_node("src");
/// let b = g.add_node("sink");
/// let e = g.add_edge(a, b, 3.5);
/// assert_eq!(g.edge_endpoints(e), (a, b));
/// assert_eq!(*g.edge_weight(e), 3.5);
/// assert_eq!(g.out_degree(a), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiGraph<N, E> {
    nodes: Vec<N>,
    edges: Vec<EdgeData<E>>,
    out_adj: Vec<Vec<EdgeId>>,
    in_adj: Vec<Vec<EdgeId>>,
}

impl<N, E> Default for DiGraph<N, E> {
    fn default() -> Self {
        DiGraph {
            nodes: Vec::new(),
            edges: Vec::new(),
            out_adj: Vec::new(),
            in_adj: Vec::new(),
        }
    }
}

impl<N, E> DiGraph<N, E> {
    /// Create an empty graph.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node with the given weight and return its handle.
    pub fn add_node(&mut self, weight: N) -> NodeId {
        let id = NodeId(u32::try_from(self.nodes.len()).expect("too many nodes"));
        self.nodes.push(weight);
        self.out_adj.push(Vec::new());
        self.in_adj.push(Vec::new());
        id
    }

    /// Add a directed edge `src → dst` and return its handle.
    ///
    /// Parallel edges are permitted; callers that need simple graphs should
    /// check [`DiGraph::find_edge`] first.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint does not belong to this graph.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, weight: E) -> EdgeId {
        assert!(src.index() < self.nodes.len(), "source node out of range");
        assert!(dst.index() < self.nodes.len(), "target node out of range");
        let id = EdgeId(u32::try_from(self.edges.len()).expect("too many edges"));
        self.edges.push(EdgeData { src, dst, weight });
        self.out_adj[src.index()].push(id);
        self.in_adj[dst.index()].push(id);
        id
    }

    /// Number of nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Weight of a node.
    ///
    /// # Panics
    ///
    /// Panics if `n` does not belong to this graph.
    #[must_use]
    pub fn node_weight(&self, n: NodeId) -> &N {
        &self.nodes[n.index()]
    }

    /// Mutable weight of a node.
    ///
    /// # Panics
    ///
    /// Panics if `n` does not belong to this graph.
    pub fn node_weight_mut(&mut self, n: NodeId) -> &mut N {
        &mut self.nodes[n.index()]
    }

    /// Weight of an edge.
    ///
    /// # Panics
    ///
    /// Panics if `e` does not belong to this graph.
    #[must_use]
    pub fn edge_weight(&self, e: EdgeId) -> &E {
        &self.edges[e.index()].weight
    }

    /// `(source, target)` endpoints of an edge.
    ///
    /// # Panics
    ///
    /// Panics if `e` does not belong to this graph.
    #[must_use]
    pub fn edge_endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        let d = &self.edges[e.index()];
        (d.src, d.dst)
    }

    /// Iterate over all node handles in insertion order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId::from_index)
    }

    /// Iterate over `(id, &weight)` for all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &N)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, w)| (NodeId::from_index(i), w))
    }

    /// Iterate over all edges as [`EdgeRef`]s.
    pub fn edges(&self) -> impl Iterator<Item = EdgeRef<'_, E>> {
        self.edges.iter().enumerate().map(|(i, d)| EdgeRef {
            id: EdgeId::from_index(i),
            src: d.src,
            dst: d.dst,
            weight: &d.weight,
        })
    }

    /// Outgoing edges of `n`.
    pub fn out_edges(&self, n: NodeId) -> impl Iterator<Item = EdgeRef<'_, E>> {
        self.out_adj[n.index()].iter().map(move |&e| {
            let d = &self.edges[e.index()];
            EdgeRef {
                id: e,
                src: d.src,
                dst: d.dst,
                weight: &d.weight,
            }
        })
    }

    /// Incoming edges of `n`.
    pub fn in_edges(&self, n: NodeId) -> impl Iterator<Item = EdgeRef<'_, E>> {
        self.in_adj[n.index()].iter().map(move |&e| {
            let d = &self.edges[e.index()];
            EdgeRef {
                id: e,
                src: d.src,
                dst: d.dst,
                weight: &d.weight,
            }
        })
    }

    /// Successor nodes of `n` (one entry per outgoing edge).
    pub fn successors(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.out_edges(n).map(|e| e.dst)
    }

    /// Predecessor nodes of `n` (one entry per incoming edge).
    pub fn predecessors(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.in_edges(n).map(|e| e.src)
    }

    /// Out-degree of `n`.
    #[must_use]
    pub fn out_degree(&self, n: NodeId) -> usize {
        self.out_adj[n.index()].len()
    }

    /// In-degree of `n`.
    #[must_use]
    pub fn in_degree(&self, n: NodeId) -> usize {
        self.in_adj[n.index()].len()
    }

    /// First edge `src → dst`, if one exists.
    #[must_use]
    pub fn find_edge(&self, src: NodeId, dst: NodeId) -> Option<EdgeId> {
        self.out_adj[src.index()]
            .iter()
            .copied()
            .find(|&e| self.edges[e.index()].dst == dst)
    }

    /// Whether an edge `src → dst` exists.
    #[must_use]
    pub fn contains_edge(&self, src: NodeId, dst: NodeId) -> bool {
        self.find_edge(src, dst).is_some()
    }

    /// Build the subgraph induced by `keep` (all kept nodes plus every edge
    /// whose endpoints are both kept), cloning weights. Returns the subgraph
    /// and the mapping `old NodeId → new NodeId` in `keep` order.
    #[must_use]
    pub fn induced_subgraph(&self, keep: &[NodeId]) -> (DiGraph<N, E>, Vec<(NodeId, NodeId)>)
    where
        N: Clone,
        E: Clone,
    {
        let mut sub = DiGraph::new();
        let mut remap = vec![None; self.nodes.len()];
        let mut mapping = Vec::with_capacity(keep.len());
        for &n in keep {
            let new = sub.add_node(self.nodes[n.index()].clone());
            remap[n.index()] = Some(new);
            mapping.push((n, new));
        }
        for d in &self.edges {
            if let (Some(s), Some(t)) = (remap[d.src.index()], remap[d.dst.index()]) {
                sub.add_edge(s, t, d.weight.clone());
            }
        }
        (sub, mapping)
    }
}

impl<N: fmt::Debug, E> fmt::Display for DiGraph<N, E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "digraph ({} nodes, {} edges):",
            self.num_nodes(),
            self.num_edges()
        )?;
        for (id, w) in self.nodes() {
            writeln!(f, "  {id}: {w:?}")?;
        }
        for e in self.edges() {
            writeln!(f, "  {} -> {}", e.src, e.dst)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (DiGraph<&'static str, u32>, [NodeId; 4]) {
        let mut g = DiGraph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let d = g.add_node("d");
        g.add_edge(a, b, 1);
        g.add_edge(a, c, 2);
        g.add_edge(b, d, 3);
        g.add_edge(c, d, 4);
        (g, [a, b, c, d])
    }

    #[test]
    fn build_and_degrees() {
        let (g, [a, b, _c, d]) = diamond();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_degree(a), 2);
        assert_eq!(g.in_degree(d), 2);
        assert_eq!(g.out_degree(d), 0);
        assert_eq!(g.in_degree(b), 1);
    }

    #[test]
    fn adjacency_iterators() {
        let (g, [a, b, c, d]) = diamond();
        let succs: Vec<_> = g.successors(a).collect();
        assert_eq!(succs, vec![b, c]);
        let preds: Vec<_> = g.predecessors(d).collect();
        assert_eq!(preds, vec![b, c]);
        assert_eq!(g.out_edges(a).count(), 2);
        assert_eq!(g.in_edges(d).count(), 2);
    }

    #[test]
    fn find_and_contains() {
        let (g, [a, b, _c, d]) = diamond();
        assert!(g.contains_edge(a, b));
        assert!(!g.contains_edge(b, a));
        assert!(!g.contains_edge(a, d));
        let e = g.find_edge(a, b).unwrap();
        assert_eq!(g.edge_endpoints(e), (a, b));
        assert_eq!(*g.edge_weight(e), 1);
    }

    #[test]
    fn parallel_edges_allowed() {
        let mut g: DiGraph<(), u8> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 1);
        g.add_edge(a, b, 2);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_degree(a), 2);
    }

    #[test]
    fn node_weight_mutation() {
        let mut g: DiGraph<u32, ()> = DiGraph::new();
        let n = g.add_node(1);
        *g.node_weight_mut(n) = 7;
        assert_eq!(*g.node_weight(n), 7);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let (g, [a, b, _c, d]) = diamond();
        let (sub, mapping) = g.induced_subgraph(&[a, b, d]);
        assert_eq!(sub.num_nodes(), 3);
        // Edges a->b and b->d survive; a->c and c->d drop.
        assert_eq!(sub.num_edges(), 2);
        assert_eq!(mapping.len(), 3);
        let (old, new) = mapping[0];
        assert_eq!(old, a);
        assert_eq!(*sub.node_weight(new), "a");
    }

    #[test]
    fn ids_roundtrip_and_display() {
        let n = NodeId::from_index(3);
        assert_eq!(n.index(), 3);
        assert_eq!(n.to_string(), "n3");
        let e = EdgeId::from_index(5);
        assert_eq!(e.index(), 5);
        assert_eq!(e.to_string(), "e5");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn edge_endpoint_validation() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let ghost = NodeId::from_index(9);
        g.add_edge(a, ghost, ());
    }

    #[test]
    fn display_renders() {
        let (g, _) = diamond();
        let text = g.to_string();
        assert!(text.contains("4 nodes"));
        assert!(text.contains("n0 -> n1"));
    }
}
