//! Micro-benchmarks of the substrates: the MILP solver and the subgraph
//! isomorphism engine (the design choices DESIGN.md calls out).

use contrarc_graph::iso::{subgraph_isomorphisms, MatchMode};
use contrarc_graph::DiGraph;
use contrarc_milp::{Cmp, LinExpr, Model, Sense, SolveOptions};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// A layered assignment-like MILP of the shape the encoder produces.
fn layered_milp(layers: usize, width: usize) -> Model {
    let mut m = Model::new("layered");
    let mut prev: Vec<_> = (0..width)
        .map(|i| m.add_binary(format!("l0_{i}")))
        .collect();
    let mut cost = LinExpr::new();
    for l in 1..layers {
        let cur: Vec<_> = (0..width)
            .map(|i| m.add_binary(format!("l{l}_{i}")))
            .collect();
        // Flow-like coupling between consecutive layers.
        let sum_prev = LinExpr::sum(prev.iter().copied());
        let sum_cur = LinExpr::sum(cur.iter().copied());
        m.add_constr(format!("link{l}"), sum_prev - sum_cur.clone(), Cmp::Eq, 0.0)
            .unwrap();
        m.add_constr(format!("min{l}"), sum_cur, Cmp::Ge, 1.0)
            .unwrap();
        for (i, &v) in cur.iter().enumerate() {
            cost.add_term(v, 1.0 + (i as f64) * 0.37 + (l as f64) * 0.11);
        }
        prev = cur;
    }
    m.set_objective(Sense::Minimize, cost);
    m
}

fn bench_milp(c: &mut Criterion) {
    let mut group = c.benchmark_group("milp");
    for (layers, width) in [(4, 6), (8, 10), (12, 16)] {
        let model = layered_milp(layers, width);
        group.bench_function(format!("bb/{layers}x{width}"), |b| {
            b.iter(|| {
                let out = model.solve(&SolveOptions::default()).unwrap();
                black_box(out.is_feasible())
            });
        });
    }
    group.finish();
}

fn grid_graph(rows: usize, cols: usize) -> DiGraph<u8, ()> {
    let mut g = DiGraph::new();
    let ids: Vec<Vec<_>> = (0..rows)
        .map(|r| (0..cols).map(|_| g.add_node((r % 3) as u8)).collect())
        .collect();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_edge(ids[r][c], ids[r][c + 1], ());
            }
            if r + 1 < rows {
                g.add_edge(ids[r][c], ids[r + 1][c], ());
            }
        }
    }
    g
}

fn bench_iso(c: &mut Criterion) {
    let mut group = c.benchmark_group("iso");
    let path3 = {
        let mut g = DiGraph::new();
        let a = g.add_node(0u8);
        let b = g.add_node(1u8);
        let d = g.add_node(2u8);
        g.add_edge(a, b, ());
        g.add_edge(b, d, ());
        g
    };
    for (rows, cols) in [(4, 4), (6, 6), (8, 8)] {
        let target = grid_graph(rows, cols);
        group.bench_function(format!("path3-in-grid/{rows}x{cols}"), |b| {
            b.iter(|| {
                let found = subgraph_isomorphisms(
                    black_box(&path3),
                    black_box(&target),
                    MatchMode::Monomorphism,
                    |a, t| a == t,
                );
                black_box(found.len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_milp, bench_iso);
criterion_main!(benches);
