//! Process-global metrics registry: named monotonic counters and fixed-bucket
//! histograms, snapshotted into a [`MetricsReport`].
//!
//! Collection is off by default (one relaxed atomic load per site when
//! disabled) and is enabled explicitly by harnesses — `explore_bench` embeds
//! the resulting report in `BENCH_explore.json`. Like sinks, metrics observe
//! and never steer: no instrumented code path reads a metric back.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, PoisonError};

/// Bucket upper bounds for small count distributions (pivots per node,
/// search depths): powers of two up to 4096.
pub const COUNT_BUCKETS: &[f64] = &[
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0,
];

/// Bucket upper bounds for wall-clock durations in seconds (100µs … 10s).
pub const SECONDS_BUCKETS: &[f64] = &[
    1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 1e-1, 5e-1, 1.0, 5.0, 10.0,
];

static METRICS_ON: AtomicBool = AtomicBool::new(false);

struct Hist {
    bounds: &'static [f64],
    /// One slot per bound plus an overflow slot.
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

struct Gauge {
    value: i64,
    /// High-water mark since the last reset (e.g. peak queue depth).
    max: i64,
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, Gauge>,
    hists: BTreeMap<&'static str, Hist>,
}

static REGISTRY: Mutex<Registry> = Mutex::new(Registry {
    counters: BTreeMap::new(),
    gauges: BTreeMap::new(),
    hists: BTreeMap::new(),
});

/// Whether metric collection is enabled.
#[inline]
#[must_use]
pub fn metrics_enabled() -> bool {
    METRICS_ON.load(Ordering::Relaxed)
}

/// Turn metric collection on or off. Existing values are kept; call
/// [`reset_metrics`] for a clean slate.
pub fn set_metrics_enabled(on: bool) {
    METRICS_ON.store(on, Ordering::SeqCst);
}

/// Clear every counter, gauge, and histogram.
pub fn reset_metrics() {
    let mut reg = REGISTRY.lock().unwrap_or_else(PoisonError::into_inner);
    reg.counters.clear();
    reg.gauges.clear();
    reg.hists.clear();
}

/// Add `delta` to the named counter. No-op while collection is disabled.
pub fn counter_add(name: &'static str, delta: u64) {
    if !metrics_enabled() {
        return;
    }
    let mut reg = REGISTRY.lock().unwrap_or_else(PoisonError::into_inner);
    *reg.counters.entry(name).or_insert(0) += delta;
}

/// Record `value` into the named fixed-bucket histogram. The first
/// observation fixes the bucket bounds; callers must pass the same `bounds`
/// for a given name (use the shared constants above). No-op while disabled.
pub fn observe_hist(name: &'static str, bounds: &'static [f64], value: f64) {
    if !metrics_enabled() {
        return;
    }
    let mut reg = REGISTRY.lock().unwrap_or_else(PoisonError::into_inner);
    let hist = reg.hists.entry(name).or_insert_with(|| Hist {
        bounds,
        counts: vec![0; bounds.len() + 1],
        count: 0,
        sum: 0.0,
        min: f64::INFINITY,
        max: f64::NEG_INFINITY,
    });
    let slot = hist
        .bounds
        .iter()
        .position(|&b| value <= b)
        .unwrap_or(hist.bounds.len());
    hist.counts[slot] += 1;
    hist.count += 1;
    hist.sum += value;
    hist.min = hist.min.min(value);
    hist.max = hist.max.max(value);
}

/// Set the named gauge to an absolute value, tracking its high-water mark
/// (e.g. live queue depth and peak queue depth). No-op while disabled.
pub fn gauge_set(name: &'static str, value: i64) {
    if !metrics_enabled() {
        return;
    }
    let mut reg = REGISTRY.lock().unwrap_or_else(PoisonError::into_inner);
    let gauge = reg
        .gauges
        .entry(name)
        .or_insert(Gauge { value, max: value });
    gauge.value = value;
    gauge.max = gauge.max.max(value);
}

/// Adjust the named gauge by a signed delta (starting from 0), tracking its
/// high-water mark. No-op while disabled.
pub fn gauge_add(name: &'static str, delta: i64) {
    if !metrics_enabled() {
        return;
    }
    let mut reg = REGISTRY.lock().unwrap_or_else(PoisonError::into_inner);
    let gauge = reg.gauges.entry(name).or_insert(Gauge { value: 0, max: 0 });
    gauge.value += delta;
    gauge.max = gauge.max.max(gauge.value);
}

/// Snapshot of one counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Metric name.
    pub name: &'static str,
    /// Current value.
    pub value: u64,
}

/// Snapshot of one gauge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeSnapshot {
    /// Metric name.
    pub name: &'static str,
    /// Last set value.
    pub value: i64,
    /// High-water mark since the last reset.
    pub max: i64,
}

/// Snapshot of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: &'static str,
    /// Bucket upper bounds.
    pub bounds: Vec<f64>,
    /// Per-bucket counts; one extra overflow slot at the end.
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
}

impl HistogramSnapshot {
    /// Mean of the observed values (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimate the `q`-quantile (`q ∈ [0, 1]`) from the bucket counts by
    /// linear interpolation inside the bucket containing the target rank —
    /// the same estimator Prometheus' `histogram_quantile` uses, except the
    /// open-ended overflow bucket interpolates toward the tracked `max`
    /// instead of being unbounded. Estimates are clamped to the observed
    /// `[min, max]` range; an empty histogram estimates 0.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            let prev = cum;
            cum += c;
            if c > 0 && cum as f64 >= rank {
                let upper = self.bounds.get(i).copied().unwrap_or(self.max);
                let lower = if i == 0 {
                    self.min.min(upper)
                } else {
                    self.bounds[i - 1]
                };
                let frac = ((rank - prev as f64) / c as f64).clamp(0.0, 1.0);
                return (lower + (upper - lower) * frac).clamp(self.min, self.max);
            }
        }
        self.max
    }
}

/// A point-in-time snapshot of the whole registry, ready for rendering
/// (`contrarc::report`) or JSON embedding (`explore_bench`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsReport {
    /// All counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges, sorted by name.
    pub gauges: Vec<GaugeSnapshot>,
    /// All histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsReport {
    /// Whether nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// The value of a named counter, if present.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// The named gauge, if present.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<&GaugeSnapshot> {
        self.gauges.iter().find(|g| g.name == name)
    }

    /// The named histogram, if present.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Render as a JSON object value (no surrounding key), e.g.
    /// `{"counters":{"milp.nodes":12},"histograms":{…}}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", c.name, c.value);
        }
        out.push_str("},\"gauges\":{");
        for (i, g) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"value\":{},\"max\":{}}}",
                g.name, g.value, g.max
            );
        }
        out.push_str("},\"histograms\":{");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"bounds\":[",
                h.name,
                h.count,
                json_num(h.sum),
                json_num(if h.count == 0 { 0.0 } else { h.min }),
                json_num(if h.count == 0 { 0.0 } else { h.max }),
            );
            for (j, b) in h.bounds.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}", json_num(*b));
            }
            out.push_str("],\"counts\":[");
            for (j, c) in h.counts.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{c}");
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// Snapshot the registry without clearing it.
#[must_use]
pub fn snapshot() -> MetricsReport {
    let reg = REGISTRY.lock().unwrap_or_else(PoisonError::into_inner);
    MetricsReport {
        counters: reg
            .counters
            .iter()
            .map(|(&name, &value)| CounterSnapshot { name, value })
            .collect(),
        gauges: reg
            .gauges
            .iter()
            .map(|(&name, g)| GaugeSnapshot {
                name,
                value: g.value,
                max: g.max,
            })
            .collect(),
        histograms: reg
            .hists
            .iter()
            .map(|(&name, h)| HistogramSnapshot {
                name,
                bounds: h.bounds.to_vec(),
                counts: h.counts.clone(),
                count: h.count,
                sum: h.sum,
                min: h.min,
                max: h.max,
            })
            .collect(),
    }
}

/// Run `f` with a clean, enabled registry and return its result together
/// with the snapshot taken afterwards. Serializes competing callers (the
/// registry is process-global), restores the previous enablement state, and
/// leaves the registry reset. Intended for tests and harnesses.
pub fn with_metrics<T>(f: impl FnOnce() -> T) -> (T, MetricsReport) {
    static SCOPE: Mutex<()> = Mutex::new(());
    let _guard = SCOPE.lock().unwrap_or_else(PoisonError::into_inner);
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            set_metrics_enabled(self.0);
            reset_metrics();
        }
    }
    let restore = Restore(metrics_enabled());
    reset_metrics();
    set_metrics_enabled(true);
    let result = f();
    let report = snapshot();
    drop(restore);
    (result, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, JsonValue};

    #[test]
    fn counters_and_histograms_snapshot() {
        let ((), report) = with_metrics(|| {
            counter_add("test.hits", 2);
            counter_add("test.hits", 3);
            observe_hist("test.depth", COUNT_BUCKETS, 3.0);
            observe_hist("test.depth", COUNT_BUCKETS, 9000.0);
        });
        assert_eq!(report.counter("test.hits"), Some(5));
        let h = report.histogram("test.depth").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.min, 3.0);
        assert_eq!(h.max, 9000.0);
        assert_eq!(*h.counts.last().unwrap(), 1, "overflow bucket used");
        assert_eq!(h.counts.iter().sum::<u64>(), 2);
    }

    #[test]
    fn gauges_track_value_and_high_water_mark() {
        let ((), report) = with_metrics(|| {
            gauge_add("test.depth", 3);
            gauge_add("test.depth", 2);
            gauge_add("test.depth", -4);
            gauge_set("test.level", 9);
            gauge_set("test.level", 1);
        });
        let depth = report.gauge("test.depth").unwrap();
        assert_eq!(depth.value, 1);
        assert_eq!(depth.max, 5);
        let level = report.gauge("test.level").unwrap();
        assert_eq!(level.value, 1);
        assert_eq!(level.max, 9);
        let doc = parse(&report.to_json()).unwrap();
        assert_eq!(
            doc.get("gauges")
                .and_then(|g| g.get("test.depth"))
                .and_then(|g| g.get("max")),
            Some(&JsonValue::Num(5.0))
        );
    }

    #[test]
    fn disabled_sites_record_nothing() {
        let ((), report) = with_metrics(|| ());
        assert!(report.is_empty());
        counter_add("test.ignored", 1);
        observe_hist("test.ignored_h", SECONDS_BUCKETS, 0.5);
        let ((), after) = with_metrics(|| ());
        assert_eq!(after.counter("test.ignored"), None);
        assert!(after.histogram("test.ignored_h").is_none());
    }

    #[test]
    fn report_json_parses_with_hand_parser() {
        let ((), report) = with_metrics(|| {
            counter_add("a.b", 7);
            observe_hist("c.d", SECONDS_BUCKETS, 0.002);
        });
        let doc = parse(&report.to_json()).unwrap();
        assert_eq!(
            doc.get("counters").and_then(|c| c.get("a.b")),
            Some(&JsonValue::Num(7.0))
        );
        let hist = doc.get("histograms").and_then(|h| h.get("c.d")).unwrap();
        assert_eq!(hist.get("count"), Some(&JsonValue::Num(1.0)));
    }
}
